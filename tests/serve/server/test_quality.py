"""Serving-tier quality monitoring: tap, drift endpoint, gauges, chaos.

The contract under test: the quality tap is *observe-only* (responses are
byte-identical with the tap on, off, or crashing), bounded-memory, and the
drift scorer flags a model whose live output no longer matches the
reference statistics frozen into its manifest.
"""

import json

import numpy as np
import pytest

from repro.obs.quality import reference_stats
from repro.serve import ModelRegistry, SynthesisClient, SynthesisServer
from repro.serve.quality import MAX_TAP_ERRORS, QualityMonitor
from repro.utils.faults import FaultPlan, inject

SEED = 11


@pytest.fixture(scope="module")
def quality_registry(tmp_path_factory, trained_gan, adult_bundle):
    """Three registrations of one trained GAN, differing only in reference:

    * ``plain`` — no reference stats (pre-quality manifests keep working);
    * ``calibrated`` — reference frozen from the model's *own* output
      distribution, so live serving should score ``ok``;
    * ``shifted`` — reference frozen from a shifted copy of the training
      table: the live output cannot match it, so the scorer must flag it.
    """
    registry = ModelRegistry(tmp_path_factory.mktemp("quality-registry"))
    registry.register("plain", trained_gan)

    own_output = trained_gan.sample(2048, rng=np.random.default_rng(5))
    registry.register("calibrated", trained_gan,
                      reference_stats=reference_stats(own_output))

    train = adult_bundle.train
    shifted_values = train.values.copy()
    for i, spec in enumerate(train.schema.columns):
        if spec.kind.value != "categorical":
            shifted_values[:, i] = shifted_values[:, i] + 1000.0
    registry.register("shifted", trained_gan,
                      reference_stats=reference_stats(
                          train.with_values(shifted_values)))
    return registry


def _serve(registry, **kwargs):
    kwargs.setdefault("port", 0)
    kwargs.setdefault("seed", SEED)
    kwargs.setdefault("pool_size", 0)
    return SynthesisServer(registry, **kwargs)


class TestQualityEndpoint:
    def test_calibrated_model_scores_ok(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("calibrated", 1024)
            _, raw = client._request("GET", "/models/calibrated/quality")
            report = json.loads(raw)
        assert report["reference"] is True
        assert report["rows_sketched"] >= 1024
        assert report["status"] == "ok"
        assert report["drift"]["scored"] is True

    def test_shifted_reference_reports_drift(self, quality_registry):
        """The ISSUE 10 acceptance test: a model registered against a
        shifted reference distribution must read warn/drift once enough
        rows have streamed through the tap."""
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("shifted", 1024)
            _, raw = client._request("GET", "/models/shifted/quality")
            report = json.loads(raw)
            health = client.health()
        assert report["status"] in ("warn", "drift")
        numeric = {name: col
                   for name, col in report["drift"]["columns"].items()
                   if report["sketch"]["columns"][name]["kind"]
                   != "categorical"}
        assert all(col["status"] == "drift" for col in numeric.values())
        # Drift is surfaced in /healthz alongside — never merged into —
        # worker health: a drifting model still serves.
        assert health["quality"]["shifted"] in ("warn", "drift")
        assert health["status"] == "ok"

    def test_no_reference_serves_and_reports_unscored(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("plain", 128)
            _, raw = client._request("GET", "/models/plain/quality")
            report = json.loads(raw)
        assert report["reference"] is False
        assert report["status"] == "ok"
        assert report["drift"] is None
        assert report["rows_sketched"] >= 128

    def test_quality_disabled_server_reports_off(self, quality_registry):
        with _serve(quality_registry, quality=False) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("calibrated", 16)
            _, raw = client._request("GET", "/models/calibrated/quality")
            report = json.loads(raw)
            health = client.health()
        assert report == {"model": "calibrated", "status": "off",
                          "reference": False}
        assert health["quality"] == {}

    def test_wrong_method_is_405(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            from repro.serve import ServerError
            with pytest.raises(ServerError) as excinfo:
                client._request("POST", "/models/calibrated/quality",
                                payload={})
            assert excinfo.value.status == 405


class TestDeterminism:
    def test_responses_byte_identical_with_tap_on_off(self, quality_registry):
        """The tap is observe-only: the sample stream must not change by
        one byte whether quality is armed, disarmed, or crashing."""
        bodies = {}
        plan = FaultPlan()
        plan.arm("quality.tap", times=None)
        for key, kwargs, fault in (
            ("on", {}, None),
            ("off", {"quality": False}, None),
            ("crashing", {}, plan),
        ):
            with _serve(quality_registry, **kwargs) as server, \
                    SynthesisClient(port=server.port) as client:
                chunks = []
                ctx = inject(fault) if fault is not None else None
                if ctx is not None:
                    ctx.__enter__()
                try:
                    for n in (13, 200, 64):
                        _, raw = client._request(
                            "POST", "/models/calibrated/sample",
                            payload={"n": n})
                        chunks.append(raw)
                finally:
                    if ctx is not None:
                        ctx.__exit__(None, None, None)
                bodies[key] = b"".join(chunks)
        assert bodies["on"] == bodies["off"] == bodies["crashing"]

    def test_procpool_responses_match_threaded(self, quality_registry):
        bodies = {}
        for workers in (0, 1):
            with _serve(quality_registry, server_workers=workers,
                        pool_size=256) as server, \
                    SynthesisClient(port=server.port) as client:
                _, raw = client._request("POST", "/models/calibrated/sample",
                                         payload={"n": 100})
                bodies[workers] = raw
        assert bodies[0] == bodies[1]


class TestProcpoolFold:
    def test_worker_sketches_fold_into_parent(self, quality_registry):
        with _serve(quality_registry, server_workers=1,
                    pool_size=256) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("calibrated", 300)
            _, raw = client._request("GET", "/models/calibrated/quality")
            report = json.loads(raw)
        assert report["rows_sketched"] >= 300
        assert report["tap_errors"] == 0
        # The parent reservoir-samples decoded rows from the shared ring.
        assert report["sketch"]["reservoir"]["rows"] > 0
        assert report["status"] == "ok"


class TestChaos:
    def test_tap_fault_never_blocks_sampling(self, quality_registry):
        plan = FaultPlan()
        plan.arm("quality.tap", times=None)
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            with inject(plan):
                result = client.sample("calibrated", 64)
                _, raw = client._request("GET", "/models/calibrated/quality")
                report = json.loads(raw)
        assert len(result["rows"]) == 64
        assert report["tap_errors"] >= 1
        assert report["rows_sketched"] == 0

    def test_tap_disables_itself_after_repeated_failures(self):
        monitor = QualityMonitor(
            "m", _tiny_schema(), [0.0], [1.0], reservoir_rows=0)
        plan = FaultPlan()
        plan.arm("quality.tap", times=None)
        with inject(plan):
            for _ in range(MAX_TAP_ERRORS + 3):
                monitor.tap(np.zeros((4, 1)))
        assert monitor.disabled is True
        assert monitor.tap_errors == MAX_TAP_ERRORS
        # Disabled taps are free and safe even once the fault clears.
        monitor.tap(np.zeros((4, 1)))
        assert monitor.sketch.count == 0

    def test_worker_side_crash_ships_none_payload(self):
        monitor = QualityMonitor(
            "m", _tiny_schema(), [0.0], [1.0], reservoir_rows=0)
        monitor.fold(None)
        assert monitor.tap_errors == 1
        assert monitor.sketch.count == 0


def _tiny_schema():
    from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
    return TableSchema([
        ColumnSpec("x", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE),
    ])


class TestMetricsSurface:
    def test_quality_gauges_published(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("shifted", 512)
            text = client.metrics_text()
        lines = text.splitlines()
        assert any(line.startswith('quality_status{model="shifted"}')
                   for line in lines)
        status = [line for line in lines
                  if line.startswith('quality_status{model="shifted"}')]
        assert float(status[0].split()[-1]) >= 1.0  # warn=1 / drift=2
        assert any(line.startswith("quality_drift_statistic{")
                   for line in lines)
        assert any(line.startswith('quality_rows_sketched{model="shifted"}')
                   for line in lines)

    def test_metrics_json_carries_quality_summary(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("shifted", 512)
            metrics = client.metrics()
        quality = metrics["models"]["shifted"]["quality"]
        assert quality["reference"] is True
        assert quality["status"] in ("warn", "drift")
        assert quality["rows_sketched"] >= 512

    def test_model_filter_restricts_text_exposition(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("calibrated", 32)
            client.sample("plain", 32)
            _, raw = client._request("GET", "/metrics?model=calibrated",
                                     accept="text/plain")
            filtered = raw.decode()
            _, raw_all = client._request("GET", "/metrics",
                                         accept="text/plain")
            unfiltered = raw_all.decode()
        assert 'model="calibrated"' in filtered
        assert 'model="plain"' not in filtered
        # Series without a model label (server-wide gauges) are omitted
        # when filtering, present otherwise.
        assert "server_uptime_seconds" in unfiltered
        assert "server_uptime_seconds" not in filtered

    def test_model_filter_restricts_json_document(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("calibrated", 32)
            client.sample("plain", 32)
            _, raw = client._request("GET", "/metrics?model=plain",
                                     accept="application/json")
            metrics = json.loads(raw)
        assert list(metrics["models"]) == ["plain"]
        assert metrics["resident_models"] == ["plain"]
        # Top-level server fields keep their shape under the filter.
        assert "uptime_s" in metrics

    def test_model_filter_matches_versioned_refs(self, quality_registry):
        with _serve(quality_registry) as server, \
                SynthesisClient(port=server.port) as client:
            client.sample("calibrated", 16)
            _, raw = client._request("GET", "/metrics?model=calib",
                                     accept="text/plain")
            prefix_only = raw.decode()
        # "calib" is a prefix but not the name and not NAME@version —
        # the filter must not treat it as a match.
        assert 'model="calibrated"' not in prefix_only
