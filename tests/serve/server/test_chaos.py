"""Chaos suite: injected faults must surface as the *designed* failure modes.

Every test arms a deterministic :class:`FaultPlan` at one of the stack's
injection seams and asserts the documented recovery behaviour — worker
supervision and poison quarantine, deadline drops, corrupt-artifact
503s, dead-batcher eviction, mid-swap registry recovery — rather than
merely that "an error happened".
"""

import http.client
import json
import os
import threading
import time

import numpy as np
import pytest

from repro.serve import ModelRegistry, SynthesisService, SynthesisServer
from repro.serve.registry import CorruptArtifactError, RegistryError
from repro.serve.server import (
    BatcherDead,
    CoalescingBatcher,
    DeadlineExceeded,
    ModelRouter,
    ProtocolError,
    ServerError,
    SynthesisClient,
    WorkerCrashed,
)
from repro.utils.faults import FaultError, FaultPlan

pytestmark = pytest.mark.chaos

SEED = 11


@pytest.fixture()
def server(populated_registry):
    # pool_size=0 keeps every request on the worker path: health recovery
    # ("degraded" clears on the next clean tick) stays observable instead
    # of requests short-circuiting through the sample pool.
    with SynthesisServer(populated_registry, port=0, seed=SEED,
                         pool_size=0, stream_threshold_rows=64,
                         stream_chunk_rows=16,
                         max_request_rows=10_000) as running:
        yield running


@pytest.fixture()
def client(server):
    with SynthesisClient(port=server.port) as connected:
        yield connected


def fast_batcher(service, **overrides):
    kwargs = dict(restart_backoff_s=0.001, max_backoff_s=0.01)
    kwargs.update(overrides)
    return CoalescingBatcher(service, **kwargs)


class TestWorkerSupervision:
    """Crash/restart/quarantine semantics at the batcher level."""

    def test_crash_gets_one_transparent_bit_exact_retry(self, trained_gan):
        service = SynthesisService(trained_gan, seed=3)
        batcher = fast_batcher(service)
        try:
            with FaultPlan().arm("batcher.tick", times=1) as plan:
                values, offset = batcher.submit(4)
            assert plan.fired("batcher.tick") == 1
            # The retried response is the exact slice the crashed tick
            # would have produced: offset 0 of the seeded stream.
            direct = trained_gan.record_sampler().sample_table(
                4, rng=np.random.default_rng(3)
            )
            assert offset == 0
            assert np.array_equal(values, direct.values)
            supervision = batcher.supervision()
            assert supervision["crashes"] == 1
            assert supervision["restarts"] == 1
            assert supervision["poisoned"] == 0
            assert supervision["health"] == "ok"  # clean tick reset it
        finally:
            batcher.close()

    def test_poison_request_quarantined_after_two_kills(self, trained_gan):
        service = SynthesisService(trained_gan, seed=3)
        batcher = fast_batcher(service)
        try:
            with FaultPlan().arm("batcher.tick", times=2):
                with pytest.raises(WorkerCrashed):
                    batcher.submit(4)  # killed the worker twice: quarantined
            values, offset = batcher.submit(3)  # the batcher survived it
            assert len(values) == 3
            supervision = batcher.supervision()
            assert supervision["poisoned"] == 1
            assert supervision["crashes"] == 2
            assert supervision["health"] == "ok"
        finally:
            batcher.close()

    def test_crash_streak_past_max_restarts_is_dead(self, trained_gan):
        service = SynthesisService(trained_gan, seed=3)
        batcher = fast_batcher(service, max_restarts=1, poison_strikes=100)
        try:
            with FaultPlan().arm("batcher.tick", times=None):
                # The in-flight request dies with the crash itself; only
                # work still queued drains with BatcherDead.
                with pytest.raises(WorkerCrashed):
                    batcher.submit(4)
            assert batcher.health == "dead"
            with pytest.raises(BatcherDead):
                batcher.submit(1)  # rejected at admission, no hang
        finally:
            batcher.close()

    def test_mid_stream_crash_truncates_after_served_chunks(self, trained_gan):
        service = SynthesisService(trained_gan, seed=3)
        batcher = fast_batcher(service)
        try:
            with FaultPlan().arm("batcher.tick", after=1, times=1):
                stream = batcher.submit_stream(32, chunk_rows=8)
                iterator = iter(stream)
                values, offset = next(iterator)  # chunk 1 arrives intact
                assert offset == 0
                assert len(values) == 8
                with pytest.raises(WorkerCrashed):
                    for _ in iterator:
                        pass
            # The dropped stream never blocks recovery.
            values, _ = batcher.submit(2)
            assert len(values) == 2
            assert batcher.supervision()["health"] == "ok"
        finally:
            batcher.close()


class TestDeadlinesAtTheBatcher:
    def test_expired_deadline_rejected_at_admission(self, trained_gan):
        service = SynthesisService(trained_gan, seed=3)
        batcher = fast_batcher(service)
        try:
            with pytest.raises(DeadlineExceeded):
                batcher.submit(4, deadline=time.monotonic() - 0.001)
            with pytest.raises(DeadlineExceeded):
                batcher.submit_stream(100, chunk_rows=10,
                                      deadline=time.monotonic() - 0.001)
        finally:
            batcher.close()

    def test_queued_expired_work_never_reaches_the_generator(self, trained_gan):
        service = SynthesisService(trained_gan, seed=3)
        batcher = fast_batcher(service)
        try:
            results = {}

            def slow_first_request():
                results["a"] = batcher.submit(8)

            with FaultPlan().arm("batcher.tick", "delay", delay_s=0.4,
                                 times=1):
                thread = threading.Thread(target=slow_first_request)
                thread.start()
                time.sleep(0.1)  # the worker is now sleeping inside A's tick
                with pytest.raises(DeadlineExceeded):
                    batcher.submit(4, deadline=time.monotonic() + 0.05)
                thread.join(timeout=5)
            assert not thread.is_alive()
            assert len(results["a"][0]) == 8
            # The expired request consumed nothing from the record stream.
            assert service.stream_position == 8
            assert batcher.supervision()["deadline_drops"] == 1
        finally:
            batcher.close()


class TestServerChaos:
    """The ISSUE's four named scenarios, end to end over HTTP."""

    def test_worker_killed_mid_stream_truncates_then_recovers(self, server,
                                                              client):
        with FaultPlan().arm("batcher.tick", after=2, times=1) as plan:
            with pytest.raises(ProtocolError, match="truncated"):
                client.sample("tiny", 128)  # streams in 16-row chunks
            assert plan.fired("batcher.tick") == 1
        # The worker restarted: the same server keeps serving.
        reply = client.sample("tiny", 8)
        assert len(reply["rows"]) == 8
        health = client.health()
        assert health["status"] == "ok"
        assert set(health["models"].values()) == {"ok"}
        supervision = client.metrics()["models"]["tiny"]["supervision"]
        assert supervision["crashes"] == 1
        assert supervision["restarts"] == 1

    def test_corrupt_artifact_is_503_and_serves_after_repair(self, server,
                                                             client):
        plan = FaultPlan().arm("registry.read", times=1,
                               exc=CorruptArtifactError("injected bit rot"))
        with plan:
            with pytest.raises(ServerError) as excinfo:
                client.sample("tiny", 4)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_s is not None
        # "Repaired" (the fault disarmed): the same ref now loads and serves.
        reply = client.sample("tiny", 4)
        assert len(reply["rows"]) == 4
        assert client.health()["models"] == {"tiny": "ok"}

    def test_deadline_expired_queued_request_gets_504(self, server, client):
        slow = threading.Thread(target=client.sample, args=("tiny", 8))
        with FaultPlan().arm("batcher.tick", "delay", delay_s=0.4, times=1):
            slow.start()
            time.sleep(0.1)
            with SynthesisClient(port=server.port) as second:
                with pytest.raises(ServerError) as excinfo:
                    second.sample("tiny", 4, deadline_ms=50)
            slow.join(timeout=5)
        assert not slow.is_alive()
        assert excinfo.value.status == 504
        metrics = client.metrics()
        model = metrics["models"]["tiny"]
        assert model["supervision"]["deadline_drops"] == 1
        # The dropped request never touched the record stream: only the
        # slow request's 8 rows were generated and served.
        assert model["stream_position"] == 8
        assert metrics["responses"]["504"] == 1

    def test_malformed_deadline_header_is_400(self, server):
        for bad in ("soon", "-5", "0"):
            conn = http.client.HTTPConnection("127.0.0.1", server.port)
            conn.request("POST", "/models/tiny/sample",
                         body=json.dumps({"n": 1}).encode(),
                         headers={"Content-Type": "application/json",
                                  "X-Deadline-Ms": bad})
            response = conn.getresponse()
            body = json.loads(response.read())
            conn.close()
            assert response.status == 400, bad
            assert "X-Deadline-Ms" in body["error"]

    def test_disconnect_storm_leaves_server_healthy(self, server, client):
        def rude_client():
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=10)
            try:
                conn.request("POST", "/models/tiny/sample",
                             body=json.dumps({"n": 512, "format": "csv"}).encode(),
                             headers={"Content-Type": "application/json",
                                      "Accept": "text/csv"})
                response = conn.getresponse()
                response.read(64)  # take a sip of the stream, then hang up
            except OSError:
                pass
            finally:
                conn.close()

        threads = [threading.Thread(target=rude_client) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        # The storm is over; the server still answers and serves.
        health = client.health()
        assert health["status"] == "ok"
        assert health["models"] == {"tiny": "ok"}
        assert len(client.sample("tiny", 8)["rows"]) == 8
        assert client.metrics()["models"]["tiny"]["supervision"]["crashes"] == 0


class TestDeadModelEviction:
    def test_router_evicts_and_reloads_a_dead_model(self, populated_registry):
        router = ModelRouter(populated_registry, pool_size=0)
        try:
            entry = router.get("tiny")
            with FaultPlan().arm("batcher.tick", times=None):
                deadline = time.monotonic() + 30
                while (entry.batcher.health != "dead"
                       and time.monotonic() < deadline):
                    with pytest.raises((WorkerCrashed, BatcherDead)):
                        entry.batcher.submit(1)
            assert entry.batcher.health == "dead"

            # The next routed request replaces the dead worker wholesale.
            fresh = router.get("tiny")
            assert fresh is not entry
            assert fresh.batcher.health == "ok"
            values, offset = fresh.batcher.submit(3)
            assert len(values) == 3
            assert router.metrics()["dead_evictions"] == 1
            assert router.health() == {"tiny": "ok"}
        finally:
            router.close()


class TestRegistryCrashWindow:
    """The re-registration swap's SIGKILL window (satellite 1)."""

    def test_fault_in_commit_window_restores_previous_model(self, tmp_path,
                                                            trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        before = registry.manifest("m")
        with FaultPlan().arm("registry.commit"):
            with pytest.raises(FaultError):
                registry.register("m", trained_gan, overwrite=True)
        # The crash handler put the previous registration back in place.
        assert registry.manifest("m") == before
        assert registry.load("m").sample(2).n_rows == 2
        leftovers = [p.name for p in tmp_path.iterdir()
                     if p.name.startswith((".trash-", ".stage-"))]
        assert leftovers == []

    def test_sigkill_window_survivor_is_restored_on_resolve(self, tmp_path,
                                                            trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        # Simulate SIGKILL between the two renames: the only good copy
        # sits in trash, the final path is gone, the stage is incomplete.
        os.replace(tmp_path / "m", tmp_path / f".trash-m-{os.getpid()}")
        assert not (tmp_path / "m").exists()

        recovered = ModelRegistry(tmp_path)  # a later process
        assert recovered.resolve("m") == "m"
        assert (tmp_path / "m").is_dir()
        assert recovered.load("m").sample(2).n_rows == 2

    def test_stale_trash_of_a_completed_swap_is_not_resurrected(self, tmp_path,
                                                                trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.register("m", trained_gan, overwrite=True)
        manifest = registry.manifest("m")
        # A crash *after* the swap committed but before trash cleanup.
        (tmp_path / f".trash-m-{os.getpid()}").mkdir()
        assert ModelRegistry(tmp_path).resolve("m") == "m"
        assert ModelRegistry(tmp_path).manifest("m") == manifest

    def test_deleted_model_is_never_resurrected(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.delete("m")
        with pytest.raises(RegistryError):
            ModelRegistry(tmp_path).resolve("m")


class TestRegistryCommitJournal:
    """The journaled overwrite swap (PR 9): a SIGKILL *between* the two
    renames must no longer cost the new registration — the fsynced
    ``.commit-*.json`` written before the swap lets the next resolve()
    roll the commit forward instead of merely restoring the old copy."""

    @staticmethod
    def _simulate_kill_between_renames(tmp_path, tmp_path_factory,
                                       trained_gan):
        """Manufacture the exact on-disk state a SIGKILL leaves when it
        lands after the trash rename but before the commit rename."""
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        # A durably complete stage: a real registration of the same model,
        # renamed into a stage directory (registration writes the staged
        # manifest before the swap begins, so this is the true state).
        side = tmp_path_factory.mktemp("staging-side")
        ModelRegistry(side).register("m", trained_gan)
        stage, trash = ".stage-m-sim0", ".trash-m-424242"
        staged_manifest = json.loads(
            (side / "m" / "manifest.json").read_text())
        os.replace(side / "m", tmp_path / stage)
        os.replace(tmp_path / "m", tmp_path / trash)
        journal = tmp_path / ".commit-m-424242.json"
        journal.write_text(json.dumps(
            {"dirname": "m", "stage": stage, "trash": trash}))
        return staged_manifest, stage, trash, journal

    def test_kill_between_renames_rolls_the_commit_forward(
            self, tmp_path, tmp_path_factory, trained_gan):
        staged_manifest, stage, trash, journal = (
            self._simulate_kill_between_renames(tmp_path, tmp_path_factory,
                                                trained_gan))
        recovered = ModelRegistry(tmp_path)  # a later process
        assert recovered.resolve("m") == "m"
        # Forward, not back: the *staged* registration is now live, and
        # every intermediate artifact of the swap is consumed.
        assert recovered.manifest("m") == staged_manifest
        assert recovered.load("m").sample(2).n_rows == 2
        assert not (tmp_path / stage).exists()
        assert not (tmp_path / trash).exists()
        assert not journal.exists()

    def test_unusable_stage_rolls_back_from_trash(self, tmp_path,
                                                  trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        old_manifest = registry.manifest("m")
        # The kill landed between the renames, but the stage has no
        # manifest (it was lost or never completed): recovery must fall
        # back to the trashed previous model.
        (tmp_path / ".stage-m-sim0").mkdir()
        os.replace(tmp_path / "m", tmp_path / ".trash-m-424242")
        (tmp_path / ".commit-m-424242.json").write_text(json.dumps(
            {"dirname": "m", "stage": ".stage-m-sim0",
             "trash": ".trash-m-424242"}))
        recovered = ModelRegistry(tmp_path)
        assert recovered.resolve("m") == "m"
        assert recovered.manifest("m") == old_manifest
        assert not (tmp_path / ".commit-m-424242.json").exists()
        assert not (tmp_path / ".trash-m-424242").exists()

    def test_journal_of_a_completed_swap_only_cleans_up(self, tmp_path,
                                                        trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.register("m", trained_gan, overwrite=True)
        manifest = registry.manifest("m")
        # A crash after the commit rename but before cleanup: the journal
        # and the trash copy survive, the final directory is already live.
        (tmp_path / ".trash-m-424242").mkdir()
        (tmp_path / ".commit-m-424242.json").write_text(json.dumps(
            {"dirname": "m", "stage": ".stage-m-gone",
             "trash": ".trash-m-424242"}))
        recovered = ModelRegistry(tmp_path)
        assert recovered.resolve("m") == "m"
        assert recovered.manifest("m") == manifest
        assert not (tmp_path / ".trash-m-424242").exists()
        assert not (tmp_path / ".commit-m-424242.json").exists()

    def test_no_journal_residue_after_clean_or_failed_swaps(self, tmp_path,
                                                            trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan)
        registry.register("m", trained_gan, overwrite=True)
        with FaultPlan().arm("registry.commit"):
            with pytest.raises(FaultError):
                registry.register("m", trained_gan, overwrite=True)
        residue = [p.name for p in tmp_path.iterdir()
                   if p.name.startswith(".commit-")]
        assert residue == []
