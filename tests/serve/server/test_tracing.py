"""End-to-end telemetry: X-Trace-Id propagation, span parenting, counters.

Every test that arms the tracer scopes it with ``trace.tracing(list)`` so
nothing leaks into other tests; servers get a private
:class:`MetricsRegistry` so counter assertions cannot see cross-test
bleed through the process-wide default registry.
"""

import time

import pytest

from repro.obs import trace
from repro.obs.metrics import MetricsRegistry
from repro.serve import SynthesisClient, SynthesisServer, SynthesisService
from repro.serve.server import CoalescingBatcher
from repro.utils.faults import FaultPlan

SEED = 11
TRACE_ID = "cafe0123cafe0123"


@pytest.fixture()
def registry_and_server(populated_registry):
    metrics_registry = MetricsRegistry()
    with SynthesisServer(populated_registry, port=0, seed=SEED,
                         stream_threshold_rows=64, stream_chunk_rows=16,
                         metrics_registry=metrics_registry) as server:
        yield metrics_registry, server


@pytest.fixture()
def server(registry_and_server):
    return registry_and_server[1]


@pytest.fixture()
def client(server):
    with SynthesisClient(port=server.port) as connected:
        yield connected


def _spans(sink, trace_id=TRACE_ID):
    return [r for r in sink
            if r.get("kind") == "span" and r.get("trace") == trace_id]


def _one(spans, name, **attr_filter):
    matches = [s for s in spans if s["name"] == name
               and all(s["attrs"].get(k) == v
                       for k, v in attr_filter.items())]
    assert len(matches) == 1, (name, attr_filter, spans)
    return matches[0]


class TestTraceIdHeader:
    def test_server_echoes_a_generated_id_while_disarmed(self, client):
        reply = client.sample("tiny", 2)
        assert len(reply["trace_id"]) == 16
        int(reply["trace_id"], 16)

    def test_inbound_id_is_echoed_back(self, client):
        reply = client.sample("tiny", 2, trace_id=TRACE_ID)
        assert reply["trace_id"] == TRACE_ID

    def test_client_propagates_the_ambient_trace_context(self, client):
        sink = []
        with trace.tracing(sink):
            with trace.span("caller") as caller:
                reply = client.sample("tiny", 2)
        assert reply["trace_id"] == caller.trace_id

    def test_oversized_inbound_id_is_truncated(self, client):
        reply = client.sample("tiny", 2, trace_id="x" * 100)
        assert reply["trace_id"] == "x" * 64


class TestSpanParenting:
    def test_coalesced_request_spans_are_parented(self, populated_registry):
        """The acceptance chain: handler → batcher → service.take_block
        → service.generate/decode, all under the request's trace id.

        ``pool_size=0`` keeps generation on the request path (a pooled
        server generates in idle replenish ticks, outside any trace)."""
        sink = []
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             pool_size=0,
                             metrics_registry=MetricsRegistry()) as server:
            with SynthesisClient(port=server.port) as client:
                client.sample("tiny", 1)  # load the model untraced
                with trace.tracing(sink):
                    reply = client.sample("tiny", 2, trace_id=TRACE_ID)
        assert reply["trace_id"] == TRACE_ID
        spans = _spans(sink)
        handler = _one(spans, "handler")
        assert handler["parent"] is None
        assert handler["attrs"]["model"] == "tiny"
        tick = _one(spans, "batcher", coalesced=1)
        assert tick["parent"] == handler["span"]
        block = _one(spans, "service.take_block")
        assert block["parent"] == tick["span"]
        generate = _one(spans, "service.generate")
        decode = _one(spans, "service.decode")
        assert generate["parent"] == block["span"]
        assert decode["parent"] == block["span"]
        render = _one(spans, "render")
        assert render["parent"] == handler["span"]

    def test_pool_hit_fast_path_spans(self, client):
        # First request replenishes the pool; the second serves from it
        # without touching the batcher worker.
        client.sample("tiny", 4)
        sink = []
        with trace.tracing(sink):
            client.sample("tiny", 2, trace_id=TRACE_ID)
        # The client returns as soon as it reads the body; the handler
        # span closes (and records) a beat later in the handler thread.
        deadline = time.time() + 2.0
        while time.time() < deadline and not [
                r for r in _spans(sink) if r["name"] == "handler"]:
            time.sleep(0.01)
        spans = _spans(sink)
        handler = _one(spans, "handler")
        probe = _one(spans, "batcher", fast_path=True)
        assert probe["attrs"]["hit"] is True
        assert probe["parent"] == handler["span"]
        pooled = _one(spans, "service.take_pooled")
        assert pooled["attrs"]["hit"] is True
        assert pooled["parent"] == probe["span"]
        # No worker tick served this request.
        assert not [s for s in spans
                    if s["name"] == "batcher" and "coalesced" in s["attrs"]]

    def test_streamed_export_spans(self, client):
        sink = []
        with trace.tracing(sink):
            reply = client.sample("tiny", 80, trace_id=TRACE_ID)  # > threshold
        assert len(reply["rows"]) == 80
        assert reply["trace_id"] == TRACE_ID
        # The handler span closes just after the client reads the terminal
        # chunk; give the handler thread a beat to write it.
        deadline = time.time() + 2.0
        while time.time() < deadline and not [
                r for r in _spans(sink) if r["name"] == "handler"]:
            time.sleep(0.01)
        spans = _spans(sink)
        handler = _one(spans, "handler")
        stream = _one(spans, "batcher", stream=True)
        assert stream["parent"] == handler["span"]
        blocks = [s for s in spans if s["name"] == "service.take_block"]
        assert blocks  # chunked generation nests under the stream span
        assert all(s["parent"] == stream["span"] for s in blocks)


class TestMetricsEndpoint:
    def test_text_exposition_via_accept_header(self, registry_and_server,
                                               client):
        client.sample("tiny", 2)
        text = client.metrics_text()
        assert "# TYPE http_responses_total counter" in text
        assert 'http_responses_total{status="200"}' in text
        assert "# TYPE batcher_ticks_total counter" in text
        assert 'batcher_queue_wait_seconds_bucket{model="tiny",le="+Inf"}' in text
        assert "router_resident_models 1" in text
        assert "server_uptime_seconds" in text

    def test_json_metrics_still_served_and_carries_stages(self, client):
        client.sample("tiny", 3)
        metrics = client.metrics()
        model = metrics["models"]["tiny"]
        assert model["queue_wait"]["count"] >= 0
        assert set(model["stages"]) >= {"generate", "decode"}
        assert model["stages"]["generate"]["count"] >= 1
        assert metrics["render"]["count"] >= 1

    def test_queue_depth_gauge_tracks_resident_models(self,
                                                      registry_and_server,
                                                      client):
        metrics_registry, _ = registry_and_server
        client.sample("tiny", 2)
        snapshot = metrics_registry.snapshot()
        depth_series = snapshot["batcher_queue_depth"]["series"]
        assert [s["labels"] for s in depth_series] == [{"model": "tiny"}]
        assert snapshot["service_pooled_rows"]["series"][0]["value"] >= 0
        assert snapshot["router_model_loads_total"]["series"][0]["value"] == 1


class TestWorkerCrashTelemetry:
    def test_crash_counters_and_structured_event(self, populated_registry):
        """Satellite 2: a supervised crash increments the registry
        counters and emits a structured event naming the in-flight
        requests' trace context."""
        service = SynthesisService(populated_registry.load("tiny"), seed=SEED)
        metrics_registry = MetricsRegistry()
        batcher = CoalescingBatcher(service, name="tiny",
                                    registry=metrics_registry)
        sink = []
        try:
            batcher.submit(2)  # warm
            with trace.tracing(sink):
                with trace.span("request", trace_id=TRACE_ID):
                    with FaultPlan().arm("batcher.tick", times=1):
                        batcher.submit(2)  # crashes once, restarts, retries
        finally:
            batcher.close()
        crashes = metrics_registry.counter(
            "batcher_worker_crashes_total").labels(model="tiny")
        restarts = metrics_registry.counter(
            "batcher_worker_restarts_total").labels(model="tiny")
        quarantines = metrics_registry.counter(
            "batcher_worker_quarantines_total").labels(model="tiny")
        assert crashes.value == 1
        assert restarts.value == 1
        assert quarantines.value == 0  # retried, not poisoned
        events = [r for r in sink if r.get("kind") == "event"
                  and r["name"] == "batcher.worker_crash"]
        assert len(events) == 1
        attrs = events[0]["attrs"]
        assert attrs["model"] == "tiny"
        assert attrs["dead"] is False
        assert attrs["quarantined"] == 0
        assert [p["trace"] for p in attrs["in_flight"]] == [TRACE_ID]

    def test_quarantine_increments_the_counter(self, populated_registry):
        service = SynthesisService(populated_registry.load("tiny"), seed=SEED)
        metrics_registry = MetricsRegistry()
        batcher = CoalescingBatcher(service, name="tiny",
                                    registry=metrics_registry,
                                    poison_strikes=1,
                                    restart_backoff_s=0.001)
        try:
            batcher.submit(2)  # warm
            with FaultPlan().arm("batcher.tick", times=1):
                with pytest.raises(Exception):
                    batcher.submit(2)
        finally:
            batcher.close()
        quarantines = metrics_registry.counter(
            "batcher_worker_quarantines_total").labels(model="tiny")
        assert quarantines.value == 1
