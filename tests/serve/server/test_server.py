"""SynthesisServer end to end: lifecycle, endpoints, determinism, drain."""

import csv
import http.client
import io
import json
import threading

import numpy as np
import pytest

from repro.data.io import decoded_rows
from repro.serve import (
    ModelRegistry,
    ServerError,
    SynthesisClient,
    SynthesisServer,
    SynthesisService,
)

SEED = 11


@pytest.fixture()
def server(populated_registry):
    with SynthesisServer(populated_registry, port=0, seed=SEED,
                         stream_threshold_rows=64, stream_chunk_rows=16,
                         max_request_rows=1000) as running:
        yield running


@pytest.fixture()
def client(server):
    with SynthesisClient(port=server.port) as connected:
        yield connected


def _direct_service(populated_registry):
    """The in-process reference the server's responses must match."""
    return SynthesisService(populated_registry.load("tiny"), seed=SEED)


class TestEndpoints:
    def test_healthz(self, client):
        health = client.health()
        assert health["status"] == "ok"
        assert health["uptime_s"] >= 0

    def test_models_listing(self, client):
        models = client.models()
        assert [entry["name"] for entry in models] == ["tiny"]
        assert models[0]["resident"] is False
        client.sample("tiny", 1)
        assert client.models()[0]["resident"] is True

    def test_manifest(self, client, populated_registry):
        assert client.manifest("tiny") == populated_registry.manifest("tiny")

    def test_metrics_after_requests(self, client):
        client.sample("tiny", 3)
        client.sample("tiny", 4)
        metrics = client.metrics()
        assert metrics["draining"] is False
        assert metrics["responses"]["200"] >= 2
        model = metrics["models"]["tiny"]
        assert model["stats"]["rows_served"] == 7
        assert model["stream_position"] == 7
        assert model["latency"]["count"] == 2
        assert model["latency"]["p99_ms"] > 0


class TestMalformedRequests:
    def test_unknown_model_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sample("missing", 5)
        assert excinfo.value.status == 404

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_wrong_method_is_405(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/healthz", payload={})
        assert excinfo.value.status == 405

    def test_bad_json_body_is_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("POST", "/models/tiny/sample", body=b"{not json",
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert "not valid JSON" in body["error"]

    @pytest.mark.parametrize("payload", [{}, {"n": 0}, {"n": -3},
                                         {"n": "ten"}, {"n": True}])
    def test_bad_n_is_400(self, client, payload):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/models/tiny/sample", payload=payload)
        assert excinfo.value.status == 400

    def test_bad_format_is_400(self, client):
        with pytest.raises(ServerError) as excinfo:
            client._request("POST", "/models/tiny/sample",
                            payload={"n": 1, "format": "parquet"})
        assert excinfo.value.status == 400

    def test_oversized_request_is_413(self, client):
        with pytest.raises(ServerError) as excinfo:
            client.sample("tiny", 1001)
        assert excinfo.value.status == 413


class TestResponses:
    def test_json_response_bytes_match_direct_service(self, server, client,
                                                      populated_registry):
        """Byte-level check: the response body is exactly the JSON of a
        direct SynthesisService call on the same seeded stream."""
        headers, raw = client._request(
            "POST", "/models/tiny/sample", payload={"n": 9, "format": "json"}
        )
        direct = _direct_service(populated_registry)
        expected = {
            "model": "tiny",
            "n": 9,
            "offset": 0,
            "columns": list(direct.schema.names),
            "rows": decoded_rows(direct.sample(9)),
        }
        assert raw == (json.dumps(expected, separators=(",", ":"))
                       + "\n").encode()
        assert headers["X-Stream-Offset"] == "0"
        assert headers["X-Row-Count"] == "9"

    def test_csv_response_bytes_match_direct_service(self, client,
                                                     populated_registry):
        text = client.sample_csv("tiny", 7)
        direct = _direct_service(populated_registry)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(direct.schema.names)
        writer.writerows(decoded_rows(direct.sample(7)))
        assert text == buffer.getvalue()

    def test_accept_header_selects_csv(self, client):
        _, raw = client._request("POST", "/models/tiny/sample",
                                 payload={"n": 2}, accept="text/csv")
        assert raw.decode().splitlines()[0].startswith(
            client.manifest("tiny")["schema"]["columns"][0]["name"]
        )

    def test_consecutive_requests_continue_the_stream(self, client,
                                                      populated_registry):
        first = client.sample("tiny", 5)
        second = client.sample("tiny", 8)
        assert (first["offset"], second["offset"]) == (0, 5)
        direct = _direct_service(populated_registry).sample(13)
        stacked = np.array(first["rows"] + second["rows"])
        assert np.array_equal(stacked, np.array(decoded_rows(direct)))


class TestStreaming:
    def test_streamed_csv_equals_buffered_csv(self, populated_registry):
        """Above the threshold the same rows arrive chunked; the payload
        is identical to the buffered rendering of a direct service call."""
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             stream_threshold_rows=16,
                             stream_chunk_rows=8) as server:
            with SynthesisClient(port=server.port) as client:
                text = client.sample_csv("tiny", 50)  # 16 < 50 -> streamed
        direct = _direct_service(populated_registry)
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(direct.schema.names)
        writer.writerows(decoded_rows(direct.sample(50)))
        assert text == buffer.getvalue()

    def test_streamed_ndjson_reassembles(self, populated_registry):
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             stream_threshold_rows=16,
                             stream_chunk_rows=8) as server:
            with SynthesisClient(port=server.port) as client:
                reply = client.sample("tiny", 40)
        assert reply["offset"] == 0
        direct = _direct_service(populated_registry)
        assert reply["columns"] == list(direct.schema.names)
        assert np.array_equal(np.array(reply["rows"]),
                              np.array(decoded_rows(direct.sample(40))))


class TestDeterminismUnderConcurrency:
    def test_responses_tile_one_record_stream(self, server, populated_registry):
        """The acceptance invariant: concatenating responses in admission
        order reproduces a single RecordSampler run exactly, regardless of
        client concurrency."""
        requests = [3, 5, 7, 9, 2, 8, 6, 4]
        responses = []
        responses_lock = threading.Lock()

        def fire(n):
            with SynthesisClient(port=server.port) as client:
                reply = client.sample("tiny", n)
            with responses_lock:
                responses.append(reply)

        threads = [threading.Thread(target=fire, args=(n,)) for n in requests]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = sum(requests)
        model = populated_registry.load("tiny")
        direct = model.record_sampler().sample_table(
            total, rng=np.random.default_rng(SEED)
        )
        expected = decoded_rows(direct)
        responses.sort(key=lambda reply: reply["offset"])
        position = 0
        for reply in responses:
            assert reply["offset"] == position
            assert reply["rows"] == expected[position:position + reply["n"]]
            position += reply["n"]
        assert position == total


class TestUnservableModels:
    def test_chunked_model_gets_501_not_500(self, tmp_path, adult_bundle,
                                            tiny_gan_config):
        """A chunked registration is listed (servable: false) but sampling
        it returns a clear 501, not a TypeError-shaped 500."""
        from repro import ChunkedTableGAN

        chunked = ChunkedTableGAN(
            tiny_gan_config.with_overrides(epochs=1), n_chunks=2
        )
        chunked.fit(adult_bundle.train, rng=np.random.default_rng(0))
        registry = ModelRegistry(tmp_path)
        registry.register("chunked", chunked)
        with SynthesisServer(registry, port=0, seed=SEED) as server:
            with SynthesisClient(port=server.port) as client:
                listing = client.models()
                assert listing[0]["servable"] is False
                with pytest.raises(ServerError) as excinfo:
                    client.sample("chunked", 5)
                assert excinfo.value.status == 501
                assert "repro synth" in excinfo.value.message


class TestAdmissionControl:
    def test_saturated_server_answers_429_with_retry_after(
            self, populated_registry):
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             max_queue_depth=0) as server:
            with SynthesisClient(port=server.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.sample("tiny", 1)
                assert excinfo.value.status == 429
                assert excinfo.value.retry_after_s > 0

    def test_client_retries_on_429(self, populated_registry):
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             max_queue_depth=0) as server:
            with SynthesisClient(port=server.port, retries=2,
                                 max_backoff_s=0.01) as client:
                with pytest.raises(ServerError):
                    client.sample("tiny", 1)
            assert server.metrics()["responses"]["429"] == 3


class TestGracefulShutdown:
    def test_shutdown_drains_in_flight_requests(self, populated_registry):
        """Requests admitted before shutdown complete; the socket closes
        only after the last in-flight response is written."""
        server = SynthesisServer(populated_registry, port=0, seed=SEED,
                                 stream_threshold_rows=16,
                                 stream_chunk_rows=1024).start()
        # A slow reader holds an in-flight streamed response open: the
        # export is far larger than the loopback socket buffers, so the
        # handler blocks mid-response until the client reads on.
        rows = 60_000
        conn = http.client.HTTPConnection("127.0.0.1", server.port)
        conn.request("POST", "/models/tiny/sample",
                     body=json.dumps({"n": rows, "format": "csv"}).encode(),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        first = response.read(64)  # partial read, then pause
        assert response.status == 200 and first

        shutdown_done = threading.Event()

        def shut():
            server.shutdown()
            shutdown_done.set()

        shutter = threading.Thread(target=shut)
        shutter.start()
        # Drain blocks on the in-flight response ...
        assert not shutdown_done.wait(0.3)
        # ... until the client finishes reading it, complete and intact.
        rest = response.read()
        body = (first + rest).decode()
        assert len(body.splitlines()) == rows + 1  # header + every row
        conn.close()
        shutter.join(timeout=10)
        assert shutdown_done.is_set()
        with pytest.raises(OSError):
            probe = http.client.HTTPConnection("127.0.0.1", server.port,
                                               timeout=0.5)
            probe.request("GET", "/healthz")
            probe.getresponse()

    def test_shutdown_is_idempotent(self, populated_registry):
        server = SynthesisServer(populated_registry, port=0, seed=SEED).start()
        with SynthesisClient(port=server.port) as client:
            client.sample("tiny", 2)
        server.shutdown()
        server.shutdown()


class TestCliWiring:
    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--port", "0"])
        assert args.port == 0
        assert args.no_coalesce is False
        assert args.max_queue == 64
        assert args.func.__name__ == "cmd_serve"

    def test_train_register_accepts_versioned_ref(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["train", "--register", "adult@v2"]
        )
        assert args.register == "adult@v2"

    def test_serve_quality_and_trace_rotation_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args([
            "serve", "--port", "0", "--no-quality",
            "--trace-log", "/tmp/spans.jsonl",
            "--trace-log-max-mb", "8", "--trace-log-keep", "5",
        ])
        assert args.no_quality is True
        assert args.trace_log_max_mb == 8
        assert args.trace_log_keep == 5
        defaults = build_parser().parse_args(["serve", "--port", "0"])
        assert defaults.no_quality is False
        assert defaults.trace_log_max_mb is None
        assert defaults.trace_log_keep == 3

    def test_quality_parser(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["quality", "tiny@v1", "--url", "http://127.0.0.1:8000"]
        )
        assert args.ref == "tiny@v1"
        assert args.url == "http://127.0.0.1:8000"
        assert args.func.__name__ == "cmd_quality"
