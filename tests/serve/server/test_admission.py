"""Admission shaping (PR 9): priorities, per-client quotas, fairness.

Requests now carry an optional priority band and client identity
(``X-Priority`` / ``X-Client-Id`` over HTTP).  The admission queue pops
crash retries first (bit-exact recovery order is sacred), then the
highest priority band, round-robin across clients within a band, FIFO
per client — and a per-client quota bounds how much of the queue any
one identity can own.  These tests pin each property deterministically
using the blocked-stream idiom: an unconsumed stream occupies the
batcher worker, so everything submitted behind it queues in a known
order before a single row is served.
"""

import http.client
import json
import threading
import time

import pytest

from repro.serve import SynthesisService, SynthesisServer
from repro.serve.server import (
    CoalescingBatcher,
    QueueSaturated,
    QuotaExceeded,
    SynthesisClient,
)

SEED = 3


@pytest.fixture()
def service(trained_gan):
    return SynthesisService(trained_gan, seed=SEED)


def _blocked_stream(batcher, chunk_rows=4, chunks_ahead=8):
    """Occupy the worker: an unconsumed stream blocks it after 2 chunks."""
    return batcher.submit_stream(chunk_rows * chunks_ahead, chunk_rows)


def _submit_in_order(batcher, specs):
    """Admit ``(tag, n, priority, client)`` specs in exactly that order.

    Each submission runs in its own thread (submit blocks until served);
    the next is released only once the previous is visibly queued, so
    admission order is deterministic.  Returns (threads, results dict).
    """
    results = {}
    lock = threading.Lock()

    def submit(tag, n, priority, client):
        values, offset = batcher.submit(n, None, priority, client)
        with lock:
            results[tag] = (offset, len(values))

    threads = []
    for depth, (tag, n, priority, client) in enumerate(specs, start=1):
        thread = threading.Thread(target=submit,
                                  args=(tag, n, priority, client))
        thread.start()
        threads.append(thread)
        deadline = time.monotonic() + 30
        while batcher.queue_depth < depth:
            assert time.monotonic() < deadline, "request never queued"
            time.sleep(0.002)
    return threads, results


class TestPriorityOrdering:
    def test_higher_priority_drains_first_under_saturation(self, service,
                                                           trained_gan):
        batcher = CoalescingBatcher(service)
        stream = _blocked_stream(batcher)  # owns offsets [0, 32)
        threads, results = _submit_in_order(batcher, [
            ("lo1", 2, 0, "a"),
            ("hi1", 3, 5, "b"),
            ("lo2", 4, 0, "c"),
            ("hi2", 5, 5, "d"),
        ])
        list(stream)  # unblock the worker
        for thread in threads:
            thread.join(timeout=30)
        batcher.close()
        # Serve order is offset order: the priority-5 band drains before
        # the priority-0 band even though "lo1" was admitted first.
        assert results["hi1"] == (32, 3)
        assert results["hi2"] == (35, 5)
        assert results["lo1"] == (40, 2)
        assert results["lo2"] == (42, 4)

    def test_headerless_traffic_stays_fifo(self, service):
        batcher = CoalescingBatcher(service)
        stream = _blocked_stream(batcher)
        threads, results = _submit_in_order(batcher, [
            ("r1", 2, 0, None),
            ("r2", 3, 0, None),
            ("r3", 4, 0, None),
        ])
        list(stream)
        for thread in threads:
            thread.join(timeout=30)
        batcher.close()
        assert results["r1"][0] < results["r2"][0] < results["r3"][0]


class TestClientFairness:
    def test_round_robin_across_clients_within_a_band(self, service):
        """A greedy client's backlog cannot starve a later arrival: lanes
        alternate, so client b's requests interleave with a's even though
        every one of a's was admitted first."""
        batcher = CoalescingBatcher(service)
        stream = _blocked_stream(batcher)
        threads, results = _submit_in_order(batcher, [
            ("a1", 2, 0, "a"),
            ("a2", 2, 0, "a"),
            ("a3", 2, 0, "a"),
            ("a4", 2, 0, "a"),
            ("b1", 2, 0, "b"),
            ("b2", 2, 0, "b"),
        ])
        list(stream)
        for thread in threads:
            thread.join(timeout=30)
        batcher.close()
        order = sorted(results, key=lambda tag: results[tag][0])
        assert order == ["a1", "b1", "a2", "b2", "a3", "a4"]

    def test_no_client_starves_under_a_two_worker_server(
            self, populated_registry):
        """End to end through the multi-process tier: a heavy client and a
        light client share a 2-worker server; every request completes and
        the responses still tile one stream."""
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             server_workers=2) as server:
            outcomes = {"a": [], "b": []}
            errors = []

            def run(client_id, requests):
                try:
                    with SynthesisClient(port=server.port) as client:
                        for _ in range(requests):
                            reply = client.sample("tiny", 8)
                            outcomes[client_id].append(reply["offset"])
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            heavy = threading.Thread(target=run, args=("a", 24))
            light = threading.Thread(target=run, args=("b", 6))
            heavy.start()
            light.start()
            heavy.join(timeout=120)
            light.join(timeout=120)
            assert errors == []
            assert len(outcomes["a"]) == 24
            assert len(outcomes["b"]) == 6
            offsets = sorted(outcomes["a"] + outcomes["b"])
            assert offsets == list(range(0, 240, 8))


class TestClientQuota:
    def test_quota_exceeded_at_the_batcher(self, service):
        batcher = CoalescingBatcher(service, client_quota=1)
        stream = batcher.submit_stream(32, 4, None, 0, "greedy")
        # The unconsumed stream holds greedy's one admission slot
        # (queued or in flight — both count against the quota).
        with pytest.raises(QuotaExceeded) as excinfo:
            batcher.submit(1, None, 0, "greedy")
        assert excinfo.value.client == "greedy"
        assert excinfo.value.quota == 1
        assert excinfo.value.retry_after_s > 0
        # Quota saturation inherits the 429 mapping from QueueSaturated.
        assert isinstance(excinfo.value, QueueSaturated)
        # Anonymous traffic and other clients are untouched.
        list(stream)
        values, _ = batcher.submit(2, None, 0, "patient")
        assert len(values) == 2
        batcher.close()

    def test_quota_is_429_with_retry_after_over_http(self,
                                                     populated_registry):
        with SynthesisServer(populated_registry, port=0, seed=SEED,
                             client_quota=1, stream_threshold_rows=512,
                             stream_chunk_rows=256) as server:
            def sample(client_id, extra_headers=None):
                inner = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=60)
                try:
                    inner.request(
                        "POST", "/models/tiny/sample",
                        body=json.dumps({"n": 8}).encode(),
                        headers={"Content-Type": "application/json",
                                 "X-Client-Id": client_id,
                                 **(extra_headers or {})})
                    response = inner.getresponse()
                    payload = response.read()
                    return response, payload
                finally:
                    inner.close()

            # A large streamed export from "greedy", never consumed: the
            # stream stays in flight and holds the client's quota slot.
            body = json.dumps({"n": 30_000}).encode()
            conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                              timeout=60)
            stream_resp = None
            try:
                conn.request("POST", "/models/tiny/sample", body=body,
                             headers={"Content-Type": "application/json",
                                      "X-Client-Id": "greedy"})
                stream_resp = conn.getresponse()
                assert stream_resp.status == 200

                # The quota violation is rejected *at admission* — 429 with
                # Retry-After, instantly, even though the queue itself has
                # plenty of room.
                over, _ = sample("greedy")
                assert over.status == 429
                assert float(over.headers["Retry-After"]) > 0
                # (A different client would be *admitted* here — it only
                # queues behind the outstanding stream; the per-client
                # scoping of the quota is pinned deterministically at the
                # batcher level above.)
            finally:
                # Close the *response* too: conn.close() alone only drops a
                # refcount while the unread HTTPResponse keeps the socket
                # alive, so no RST would reach the blocked server write.
                if stream_resp is not None:
                    stream_resp.close()
                conn.close()  # cancels the abandoned stream

            # With the stream cancelled the quota slot frees up and the
            # same client serves normally again.
            deadline = time.monotonic() + 60
            while True:
                try:
                    ok, payload = sample("greedy")
                    if ok.status == 200:
                        break
                except OSError:
                    pass
                assert time.monotonic() < deadline, "stream never cancelled"
                time.sleep(0.05)
            assert len(json.loads(payload)["rows"]) == 8
