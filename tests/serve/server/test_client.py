"""Client-side resilience: circuit breaker, typed failures, response hardening.

The stub server here speaks raw bytes, so tests can hand the client
precisely malformed responses (garbage JSON, truncated chunked bodies,
nonsense ``Retry-After`` hints) that the real server never produces.
"""

import socket
import socketserver
import threading
import time

import pytest

from repro.serve.server.client import (
    CircuitBreaker,
    CircuitOpenError,
    ClientError,
    DeadlineExpired,
    ProtocolError,
    ServerError,
    SynthesisClient,
)


class TestCircuitBreaker:
    def test_starts_closed_and_allowing(self):
        breaker = CircuitBreaker()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_after_s=60.0)
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.opened_count == 1

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=0.02)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.03)
        assert breaker.state == "half_open"
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # no second concurrent probe

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_after_s=0.01)
        breaker.record_failure()
        time.sleep(0.02)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_probe_failure_reopens_full_window(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_after_s=0.05)
        for _ in range(5):
            breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_failure()  # one failed probe re-opens, threshold or not
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_zero_threshold_rejected(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)


class _StubHandler(socketserver.BaseRequestHandler):
    def handle(self):
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = self.request.recv(4096)
            if not chunk:
                return
            data += chunk
        head, _, body = data.partition(b"\r\n\r\n")
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                want = int(line.split(b":", 1)[1])
                while len(body) < want:
                    body += self.request.recv(4096)
        self.server.requests.append(head + b"\r\n\r\n" + body)
        responses = self.server.responses
        index = min(len(self.server.requests) - 1, len(responses) - 1)
        self.request.sendall(responses[index])


class StubServer(socketserver.ThreadingTCPServer):
    """Serves one canned raw response per connection, then closes it."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, responses):
        super().__init__(("127.0.0.1", 0), _StubHandler)
        self.responses = responses
        self.requests = []
        self._thread = threading.Thread(target=self.serve_forever, daemon=True)
        self._thread.start()

    @property
    def port(self):
        return self.server_address[1]

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        self.server_close()
        return False


def canned(status_line, headers, body=b""):
    head = status_line + "".join(f"\r\n{h}" for h in headers)
    return head.encode() + b"\r\n\r\n" + body


def ok_with_body(body, content_type="application/json"):
    return canned(
        "HTTP/1.1 200 OK",
        [f"Content-Type: {content_type}", f"Content-Length: {len(body)}",
         "Connection: close"],
        body,
    )


class TestResponseHardening:
    def test_non_json_200_body_is_protocol_error(self):
        with StubServer([ok_with_body(b"<html>oops</html>")]) as stub:
            with SynthesisClient(port=stub.port) as client:
                with pytest.raises(ProtocolError, match="invalid JSON"):
                    client.health()
                assert client.breaker.consecutive_failures == 1

    def test_truncated_chunked_body_is_protocol_error(self):
        # A chunked stream that dies before its terminating 0-length chunk.
        truncated = canned(
            "HTTP/1.1 200 OK",
            ["Content-Type: application/x-ndjson",
             "Transfer-Encoding: chunked", "Connection: close"],
            b"a\r\n{\"v\": 123}\r\n",  # one chunk, then the socket closes
        )
        with StubServer([truncated]) as stub:
            with SynthesisClient(port=stub.port) as client:
                with pytest.raises(ProtocolError, match="truncated"):
                    client.metrics()
                assert client.breaker.consecutive_failures == 1

    def test_malformed_retry_after_is_ignored_not_fatal(self):
        error = b'{"error": "busy"}'
        busy = canned(
            "HTTP/1.1 503 Service Unavailable",
            ["Content-Type: application/json", "Retry-After: soon",
             f"Content-Length: {len(error)}", "Connection: close"],
            error,
        )
        with StubServer([busy]) as stub:
            with SynthesisClient(port=stub.port, retries=1,
                                 max_backoff_s=0.01) as client:
                started = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client.health()
                elapsed = time.perf_counter() - started
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after_s is None  # garbage hint dropped
        assert len(stub.requests) == 2              # still retried
        assert elapsed < 5.0                        # never slept "soon" seconds

    def test_error_with_non_json_body_still_raises_server_error(self):
        with StubServer([canned(
            "HTTP/1.1 500 Internal Server Error",
            ["Content-Type: text/plain", "Content-Length: 4",
             "Connection: close"],
            b"boom",
        )]) as stub:
            with SynthesisClient(port=stub.port) as client:
                with pytest.raises(ServerError) as excinfo:
                    client.health()
        assert excinfo.value.status == 500
        assert excinfo.value.message == "boom"


class TestClientBreakerIntegration:
    def test_5xx_streak_opens_breaker_and_fails_fast(self):
        error = b'{"error": "down"}'
        down = canned(
            "HTTP/1.1 500 Internal Server Error",
            ["Content-Type: application/json",
             f"Content-Length: {len(error)}", "Connection: close"],
            error,
        )
        with StubServer([down]) as stub:
            with SynthesisClient(port=stub.port, failure_threshold=3,
                                 breaker_reset_s=60.0) as client:
                for _ in range(3):
                    with pytest.raises(ServerError):
                        client.health()
                with pytest.raises(CircuitOpenError):
                    client.health()
        assert len(stub.requests) == 3  # the fourth call never hit the wire

    def test_429_does_not_count_toward_breaker(self):
        error = b'{"error": "slow down"}'
        throttle = canned(
            "HTTP/1.1 429 Too Many Requests",
            ["Content-Type: application/json", "Retry-After: 0.01",
             f"Content-Length: {len(error)}", "Connection: close"],
            error,
        )
        with StubServer([throttle]) as stub:
            with SynthesisClient(port=stub.port, failure_threshold=2) as client:
                for _ in range(4):
                    with pytest.raises(ServerError):
                        client.health()
                assert client.breaker.consecutive_failures == 0
                assert client.breaker.state == "closed"

    def test_connect_failures_open_breaker(self):
        # Grab a port with no listener behind it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        client = SynthesisClient(port=dead_port, failure_threshold=2,
                                 breaker_reset_s=60.0, timeout=0.5)
        for _ in range(2):
            with pytest.raises(ClientError):
                client.health()
        with pytest.raises(CircuitOpenError):
            client.health()
        assert client.breaker.opened_count == 1

    def test_half_open_probe_recovers_after_server_returns(self):
        good = ok_with_body(b'{"status": "ok"}')
        error = b'{"error": "down"}'
        down = canned(
            "HTTP/1.1 500 Internal Server Error",
            ["Content-Type: application/json",
             f"Content-Length: {len(error)}", "Connection: close"],
            error,
        )
        with StubServer([down, good]) as stub:
            with SynthesisClient(port=stub.port, failure_threshold=1,
                                 breaker_reset_s=0.05) as client:
                with pytest.raises(ServerError):
                    client.health()
                with pytest.raises(CircuitOpenError):
                    client.health()
                time.sleep(0.06)  # window elapses: half-open lets a probe out
                assert client.health()["status"] == "ok"
                assert client.breaker.state == "closed"


class TestDeadlines:
    def test_expired_deadline_raises_without_sending(self):
        with StubServer([ok_with_body(b"{}")]) as stub:
            with SynthesisClient(port=stub.port) as client:
                with pytest.raises(DeadlineExpired):
                    client.sample("tiny", 1, deadline_ms=0)
        assert stub.requests == []

    def test_remaining_budget_is_propagated_as_header(self):
        body = b'{"model": "tiny", "n": 1, "offset": 0, "columns": [], "rows": []}'
        with StubServer([ok_with_body(body)]) as stub:
            with SynthesisClient(port=stub.port) as client:
                client.sample("tiny", 1, deadline_ms=5000)
        head = stub.requests[0].split(b"\r\n\r\n")[0].lower()
        assert b"x-deadline-ms:" in head
        value = int([line.split(b":")[1] for line in head.split(b"\r\n")
                     if line.startswith(b"x-deadline-ms")][0])
        assert 0 < value <= 5000

    def test_backoff_never_sleeps_past_the_deadline(self):
        error = b'{"error": "busy"}'
        busy = canned(
            "HTTP/1.1 503 Service Unavailable",
            ["Content-Type: application/json", "Retry-After: 30",
             f"Content-Length: {len(error)}", "Connection: close"],
            error,
        )
        with StubServer([busy]) as stub:
            with SynthesisClient(port=stub.port, retries=5,
                                 max_backoff_s=30.0) as client:
                started = time.perf_counter()
                with pytest.raises(ServerError) as excinfo:
                    client._request("GET", "/healthz", deadline_ms=200)
                elapsed = time.perf_counter() - started
        assert excinfo.value.status == 503  # last server answer surfaced
        assert elapsed < 5.0                # did not honour the 30 s hint
