"""CoalescingBatcher: coalescing, admission order, saturation, drain."""

import threading

import numpy as np
import pytest

from repro.serve import SynthesisService
from repro.serve.server import BatcherClosed, CoalescingBatcher, QueueSaturated


@pytest.fixture()
def service(trained_gan):
    return SynthesisService(trained_gan, seed=3)


def _blocked_stream(batcher, chunk_rows=4, chunks_ahead=8):
    """Occupy the worker: an unconsumed stream blocks it after 2 chunks."""
    return batcher.submit_stream(chunk_rows * chunks_ahead, chunk_rows)


class TestSubmit:
    def test_responses_are_offset_tagged_stream_slices(self, service,
                                                       trained_gan):
        batcher = CoalescingBatcher(service)
        first, offset_1 = batcher.submit(4)
        second, offset_2 = batcher.submit(6)
        batcher.close()
        direct = trained_gan.record_sampler().sample_table(
            10, rng=np.random.default_rng(3)
        )
        assert (offset_1, offset_2) == (0, 4)
        assert np.array_equal(np.concatenate([first, second]), direct.values)

    def test_rejects_bad_requests(self, service):
        batcher = CoalescingBatcher(service)
        with pytest.raises(ValueError):
            batcher.submit(0)
        with pytest.raises(ValueError):
            batcher.submit_stream(10, chunk_rows=0)
        with pytest.raises(ValueError):
            batcher.submit_stream(0, chunk_rows=4)
        batcher.close()
        with pytest.raises(ValueError):
            CoalescingBatcher(service, max_queue_depth=-1)

    def test_concurrent_submits_partition_the_stream(self, trained_gan):
        """The thread-safety invariant: responses are contiguous, disjoint
        slices that exactly tile one seeded record stream."""
        service = SynthesisService(trained_gan, pool_size=32, seed=5)
        batcher = CoalescingBatcher(service)
        results = []
        results_lock = threading.Lock()
        per_thread = [(1, 4, 2), (3, 5, 1), (2, 2, 6), (7, 1, 3)]

        def worker(counts):
            for n in counts:
                values, offset = batcher.submit(n)
                with results_lock:
                    results.append((offset, n, values))

        threads = [threading.Thread(target=worker, args=(c,))
                   for c in per_thread]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        batcher.close()

        total = sum(sum(c) for c in per_thread)
        results.sort(key=lambda item: item[0])
        offsets = [offset for offset, _, _ in results]
        lengths = [n for _, n, _ in results]
        assert offsets[0] == 0
        assert offsets == [sum(lengths[:i]) for i in range(len(lengths))]
        direct = trained_gan.record_sampler().sample_table(
            total, rng=np.random.default_rng(5)
        )
        stacked = np.concatenate([values for _, _, values in results])
        assert np.array_equal(stacked, direct.values)
        assert service.stats.rows_served == total
        assert service.stats.requests == sum(len(c) for c in per_thread)


class TestCoalescing:
    def test_queued_requests_drain_in_one_tick(self, service):
        """Requests that pile up behind a busy worker coalesce into one
        take_block call (one replenishment, one generator pass)."""
        batcher = CoalescingBatcher(service)
        stream = _blocked_stream(batcher)
        results = []
        results_lock = threading.Lock()

        def worker(n):
            values, offset = batcher.submit(n)
            with results_lock:
                results.append((offset, values))

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in (2, 3, 4, 5)]
        for thread in threads:
            thread.start()
        # Wait until every small request is queued behind the stream.
        pause = threading.Event()
        for _ in range(500):
            if batcher.queue_depth >= 5:
                break
            pause.wait(0.01)
        assert batcher.queue_depth >= 5
        chunks = list(stream)  # unblock the worker; stream completes first
        for thread in threads:
            thread.join()
        batcher.close()
        # The stream's 8 chunks cost one generator call each (pool_size=0);
        # the four queued small requests drain in ONE coalesced tick — one
        # further generator call for all of them together.
        assert service.stats.generator_calls == 9
        assert len(results) == 4
        # Stream chunks are contiguous and precede the small requests.
        assert [offset for _, offset in chunks] == list(range(0, 32, 4))
        # The small responses tile [32, 46) contiguously in admission
        # order (whatever order the threads won admission in).
        results.sort(key=lambda item: item[0])
        position = 32
        for offset, values in results:
            assert offset == position
            position += values.shape[0]
        assert position == 32 + 14

    def test_per_request_mode_serves_one_request_per_tick(self, service):
        batcher = CoalescingBatcher(service, coalesce=False)
        for n in (2, 3, 4):
            batcher.submit(n)
        assert batcher.ticks == 3
        batcher.close()


class TestAdmissionControl:
    def test_saturated_queue_raises(self, service):
        batcher = CoalescingBatcher(service, max_queue_depth=1)
        stream = _blocked_stream(batcher)
        for _ in range(200):
            if batcher.queue_depth == 1:
                break
            threading.Event().wait(0.01)
        with pytest.raises(QueueSaturated) as excinfo:
            batcher.submit(1)
        assert excinfo.value.retry_after_s > 0
        list(stream)
        batcher.close()

    def test_zero_depth_rejects_everything(self, service):
        batcher = CoalescingBatcher(service, max_queue_depth=0)
        with pytest.raises(QueueSaturated):
            batcher.submit(1)
        batcher.close()

    def test_closed_batcher_rejects(self, service):
        batcher = CoalescingBatcher(service)
        batcher.close()
        with pytest.raises(BatcherClosed):
            batcher.submit(1)
        with pytest.raises(BatcherClosed):
            batcher.submit_stream(10, 4)
        batcher.close()  # idempotent


class TestReplenishAhead:
    def test_idle_worker_pre_generates_the_pool(self, trained_gan):
        """An idle worker fills the pool ahead of demand, and serving from
        that read-ahead never perturbs the stream contract."""
        service = SynthesisService(trained_gan, pool_size=64, seed=8)
        batcher = CoalescingBatcher(service)
        pause = threading.Event()
        for _ in range(500):
            if service.pooled_rows >= 64:
                break
            pause.wait(0.01)
        assert service.pooled_rows >= 64
        assert service.stream_position == 0
        values, offset = batcher.submit(10)  # pure pool hit, handler-side
        assert offset == 0
        assert service.stats.pool_hits >= 1
        batcher.close()
        direct = trained_gan.record_sampler().sample_table(
            10, rng=np.random.default_rng(8)
        )
        assert np.array_equal(values, direct.values)

    def test_no_read_ahead_without_pool_or_coalescing(self, trained_gan):
        for kwargs in ({"pool_size": 0}, ):
            service = SynthesisService(trained_gan, seed=8, **kwargs)
            batcher = CoalescingBatcher(service)
            pause = threading.Event()
            pause.wait(0.05)
            assert service.stats.rows_generated == 0
            batcher.close()
        service = SynthesisService(trained_gan, pool_size=64, seed=8)
        batcher = CoalescingBatcher(service, coalesce=False)
        pause = threading.Event()
        pause.wait(0.05)
        assert service.stats.rows_generated == 0
        batcher.close()


class TestStreams:
    def test_stream_chunks_reassemble_exactly(self, service, trained_gan):
        batcher = CoalescingBatcher(service)
        stream = batcher.submit_stream(23, chunk_rows=5)
        chunks = list(stream)
        batcher.close()
        assert [values.shape[0] for values, _ in chunks] == [5, 5, 5, 5, 3]
        assert [offset for _, offset in chunks] == [0, 5, 10, 15, 20]
        direct = trained_gan.record_sampler().sample_table(
            23, rng=np.random.default_rng(3)
        )
        stacked = np.concatenate([values for values, _ in chunks])
        assert np.array_equal(stacked, direct.values)

    def test_cancelled_stream_stops_generating(self, service):
        batcher = CoalescingBatcher(service)
        stream = batcher.submit_stream(10_000, chunk_rows=2)
        stream.cancel()
        # The worker must come back to life for other requests.
        values, _ = batcher.submit(3)
        assert values.shape[0] == 3
        generated = service.stats.rows_generated
        batcher.close()
        assert generated < 10_000
