"""The multi-process serving tier: worker processes over a shared pool.

The contract under test is the PR 9 tentpole: a
:class:`WorkerPoolService` of N worker processes generating into a
shared-memory ring must be **byte-identical** to the in-process
:class:`SynthesisService` for the same seeded stream — across worker
counts, across crash/retry recovery, and on both the block (generate)
and pooled (zero-copy fast) paths — while leaving no shared-memory
segments behind when it closes.

Small batch geometry everywhere: the ring wraps several times per test,
so slot recycling (the part that could silently corrupt the stream) is
always exercised.
"""

import gc
import os
import signal
import time

import numpy as np
import pytest

from repro.serve import SynthesisService
from repro.serve.server import WorkerPoolError, WorkerPoolService
from repro.utils.faults import FaultPlan

BATCH = 64


def make_pool(populated_registry, **overrides):
    kwargs = dict(workers=2, pool_size=128, batch_rows=BATCH, seed=3,
                  restart_backoff_s=0.001)
    kwargs.update(overrides)
    return WorkerPoolService(populated_registry, "tiny", **kwargs)


def reference_stream(trained_gan, total, counts):
    """The same slices taken from the in-process threaded service."""
    service = SynthesisService(trained_gan, pool_size=128, batch_rows=BATCH,
                               seed=3)
    taken, base = service.take_block(counts)
    assert base == 0
    return taken


def drain_blocks(pool, counts):
    taken, base = pool.take_block(counts)
    return taken, base


def shm_segments():
    if not os.path.isdir("/dev/shm"):
        pytest.skip("no /dev/shm on this platform")
    return sorted(name for name in os.listdir("/dev/shm")
                  if name.startswith("rpool"))


class TestBitEquality:
    def test_mixed_block_takes_match_threaded_service(self, populated_registry,
                                                      trained_gan):
        counts = [13, 50, 1, 200, 64, 300, 7, 7, 100]
        expected = reference_stream(trained_gan, sum(counts), counts)
        pool = make_pool(populated_registry)
        try:
            taken, base = drain_blocks(pool, counts)
            assert base == 0
            for got, want in zip(taken, expected):
                np.testing.assert_array_equal(got, want)
        finally:
            pool.close()

    def test_stream_is_worker_count_invariant(self, populated_registry):
        counts = [40, 9, 111, 64, 200]
        streams = {}
        for workers in (1, 3):
            pool = make_pool(populated_registry, workers=workers)
            try:
                taken, base = drain_blocks(pool, counts)
                assert base == 0
                streams[workers] = np.concatenate(taken)
            finally:
                pool.close()
        np.testing.assert_array_equal(streams[1], streams[3])

    def test_pooled_fast_path_is_zero_copy_and_identical(self,
                                                         populated_registry,
                                                         trained_gan):
        expected = reference_stream(trained_gan, 32, [32])[0]
        pool = make_pool(populated_registry)
        try:
            deadline = time.monotonic() + 30
            while pool.pooled_rows < 32:
                pool.replenish()
                assert time.monotonic() < deadline, "pool never filled"
                time.sleep(0.005)
            hit = pool.take_pooled(32)
            assert hit is not None
            values, offset = hit
            assert offset == 0
            np.testing.assert_array_equal(values, expected)
            # The fast path serves a read-only *view* of the shared ring,
            # not a copy — the tentpole's zero-copy claim.
            assert not values.flags.writeable
            assert values.base is not None
            del values, hit
            gc.collect()  # release the slot leases before teardown
        finally:
            pool.close()


class TestCrashRecovery:
    def test_sigkill_mid_stream_is_transparent_and_bit_exact(
            self, populated_registry, trained_gan):
        counts = [100, 300, 250, 64, 86]
        expected = reference_stream(trained_gan, 800, [800])[0]
        pool = make_pool(populated_registry)
        try:
            first, base = pool.take_block(counts[:1])
            assert base == 0
            os.kill(pool.worker_info()["pids"][0], signal.SIGKILL)
            rest, _ = pool.take_block(counts[1:])
            got = np.concatenate(first + rest)
            np.testing.assert_array_equal(got, expected)
            info = pool.worker_info()
            assert info["crashes"] >= 1
            deadline = time.monotonic() + 30
            while pool.worker_info()["alive"] < 2:
                assert time.monotonic() < deadline, "worker never respawned"
                time.sleep(0.005)
            assert pool.health == "ok"
        finally:
            pool.close()

    def test_fault_seam_kills_propagate_into_forked_workers(
            self, populated_registry):
        # SystemExit armed at pool.block escapes the worker loop's
        # ``except Exception`` and kills the process — the fork-inherited
        # deterministic stand-in for a real SIGKILL at the seam.
        # Every respawned worker forks a fresh copy of the armed plan (the
        # parent never traverses the seam), so each worker life completes
        # one block then dies; queued blocks collect one lost attempt per
        # crash while assigned, hence the generous block_retries.
        plan = FaultPlan().arm("pool.block", "raise", after=1,
                               exc=SystemExit(13))
        with plan:
            pool = make_pool(populated_registry, workers=1, block_retries=10)
            try:
                taken, base = pool.take_block([150, 150])
                assert base == 0
                assert sum(len(t) for t in taken) == 300
                assert pool.worker_info()["crashes"] >= 1
            finally:
                pool.close()

    def test_crash_streak_past_max_restarts_fails_the_pool(
            self, populated_registry):
        plan = FaultPlan().arm("pool.block", "raise", times=None,
                               exc=SystemExit(13))
        with plan:
            pool = make_pool(populated_registry, workers=1, max_restarts=2)
            try:
                with pytest.raises(WorkerPoolError):
                    pool.take_block([BATCH])
                assert pool.health == "dead"
            finally:
                pool.close()


class TestShmHygiene:
    def test_close_unlinks_every_segment(self, populated_registry):
        before = shm_segments()
        pool = make_pool(populated_registry)
        try:
            pool.take_block([32])
            assert len(shm_segments()) > len(before)
        finally:
            pool.close()
        assert shm_segments() == before

    def test_no_leak_after_chaos_kill(self, populated_registry):
        before = shm_segments()
        pool = make_pool(populated_registry)
        try:
            pool.take_block([32])
            for pid in pool.worker_info()["pids"]:
                if pid:
                    os.kill(pid, signal.SIGKILL)
            # Recovery respawns workers and the stream continues.
            taken, _ = pool.take_block([96])
            assert sum(len(t) for t in taken) == 96
        finally:
            pool.close()
        assert shm_segments() == before

    def test_close_is_idempotent(self, populated_registry):
        pool = make_pool(populated_registry)
        pool.take_block([16])
        pool.close()
        pool.close()
        assert pool.health == "dead"
