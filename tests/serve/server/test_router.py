"""ModelRouter: lazy loading, LRU eviction, version routing, shutdown."""

import numpy as np
import pytest

from repro.serve import ModelRegistry, RegistryError
from repro.serve.server import ModelRouter, RouterClosed
from repro.serve.server.router import _estimate_bytes


class TestLookup:
    def test_lazy_load_and_reuse(self, populated_registry):
        router = ModelRouter(populated_registry)
        assert router.resident() == []
        entry = router.get("tiny")
        assert router.get("tiny") is entry
        assert router.resident() == ["tiny"]

    def test_latest_alias_shares_the_pinned_entry(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan, version="1")
        registry.register("m", trained_gan, version="2")
        router = ModelRouter(registry)
        assert router.get("m") is router.get("m@2")
        assert router.get("m@latest") is router.get("m@2")
        assert router.get("m@1") is not router.get("m@2")
        assert sorted(router.resident()) == ["m@1", "m@2"]

    def test_unknown_reference_raises(self, populated_registry):
        router = ModelRouter(populated_registry)
        with pytest.raises(RegistryError, match="no model named"):
            router.get("missing")

    def test_entries_serve_independent_streams(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("m", trained_gan, version="1")
        registry.register("m", trained_gan, version="2")
        router = ModelRouter(registry, seed=4)
        one, offset_one = router.get("m@1").batcher.submit(5)
        two, offset_two = router.get("m@2").batcher.submit(5)
        assert offset_one == 0 and offset_two == 0
        # Same weights, same per-model seed: independent identical streams.
        assert np.array_equal(one, two)
        router.close()


class TestEviction:
    def test_lru_eviction_over_max_models(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("a", trained_gan)
        registry.register("b", trained_gan)
        router = ModelRouter(registry, max_models=1)
        router.get("a")
        router.get("b")
        assert router.resident() == ["b"]
        assert router.evictions == 1
        # The reloaded model starts a fresh stream.
        _, offset = router.get("a").batcher.submit(3)
        assert offset == 0
        router.close()

    def test_memory_budget_eviction(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("a", trained_gan)
        registry.register("b", trained_gan)
        router = ModelRouter(registry, max_models=8)
        one_model = _estimate_bytes(
            router.get("a").service, router.pool_size
        )
        router.close()
        router = ModelRouter(registry, max_models=8,
                             memory_budget_bytes=int(one_model * 1.5))
        router.get("a")
        router.get("b")
        assert router.resident() == ["b"]
        router.close()

    def test_busy_entries_are_not_evicted(self, tmp_path, trained_gan):
        registry = ModelRegistry(tmp_path)
        registry.register("a", trained_gan)
        registry.register("b", trained_gan)
        router = ModelRouter(registry, max_models=1)
        entry_a = router.get("a")
        # An unconsumed stream keeps the worker busy (queue depth > 0).
        stream = entry_a.batcher.submit_stream(64, chunk_rows=4)
        router.get("b")
        assert sorted(router.resident()) == ["a", "b"]
        list(stream)
        router.close()


class TestLifecycle:
    def test_closed_router_rejects(self, populated_registry):
        router = ModelRouter(populated_registry)
        router.get("tiny")
        router.close()
        with pytest.raises(RouterClosed):
            router.get("tiny")
        router.close()  # idempotent

    def test_metrics_shape(self, populated_registry):
        router = ModelRouter(populated_registry)
        router.get("tiny").batcher.submit(4)
        metrics = router.metrics()
        assert metrics["resident_models"] == ["tiny"]
        model = metrics["models"]["tiny"]
        assert model["stats"]["rows_served"] == 4
        assert model["stream_position"] == 4
        assert model["queue_depth"] == 0
        assert model["est_bytes"] > 0
        router.close()

    def test_rejects_bad_max_models(self, populated_registry):
        with pytest.raises(ValueError):
            ModelRouter(populated_registry, max_models=0)
