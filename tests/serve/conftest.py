"""Shared serving-layer fixtures.

The registry fixture persists the session's trained tiny GAN once; tests
treat the registered artifact as read-only and register under fresh names
when they need to mutate registry state.
"""

from __future__ import annotations

import pytest

from repro.serve import ModelRegistry


@pytest.fixture(scope="session")
def populated_registry(tmp_path_factory, trained_gan):
    """A registry on disk holding the trained tiny GAN as ``tiny`` (read-only)."""
    registry = ModelRegistry(tmp_path_factory.mktemp("registry"))
    registry.register("tiny", trained_gan)
    return registry
