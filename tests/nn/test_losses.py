"""Loss functions: values, gradients, and numerical stability."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import bce_with_logits, hinge_threshold, l1, mse, sigmoid


class TestSigmoid:
    def test_extreme_logits_finite(self):
        out = sigmoid(np.array([-1e6, -50.0, 0.0, 50.0, 1e6]))
        assert np.all(np.isfinite(out))
        assert np.all((out >= 0) & (out <= 1))

    @settings(max_examples=50, deadline=None)
    @given(x=st.floats(-700, 700))
    def test_matches_reference(self, x):
        expected = 1.0 / (1.0 + np.exp(-np.clip(x, -500, 500)))
        assert np.isclose(sigmoid(np.array([x]))[0], expected, atol=1e-12)


class TestBceWithLogits:
    def test_matches_manual_formula(self, rng):
        logits = rng.standard_normal((8, 1))
        targets = (rng.random((8, 1)) > 0.5).astype(float)
        loss, grad = bce_with_logits(logits, targets)
        p = sigmoid(logits)
        manual = -np.mean(targets * np.log(p) + (1 - targets) * np.log(1 - p))
        assert np.isclose(loss, manual)

    def test_gradient_matches_numerical(self, rng):
        logits = rng.standard_normal((5, 1))
        targets = np.ones((5, 1))
        _, grad = bce_with_logits(logits, targets)
        eps = 1e-6
        for i in range(5):
            bump = logits.copy()
            bump[i, 0] += eps
            plus, _ = bce_with_logits(bump, targets)
            bump[i, 0] -= 2 * eps
            minus, _ = bce_with_logits(bump, targets)
            assert np.isclose(grad[i, 0], (plus - minus) / (2 * eps), atol=1e-6)

    def test_extreme_logits_stable(self):
        loss, grad = bce_with_logits(np.array([[1e4], [-1e4]]), np.array([[0.0], [1.0]]))
        assert np.isfinite(loss)
        assert np.all(np.isfinite(grad))

    def test_perfect_prediction_near_zero_loss(self):
        loss, _ = bce_with_logits(np.array([[50.0]]), np.array([[1.0]]))
        assert loss < 1e-10

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            bce_with_logits(np.zeros((2, 1)), np.zeros((3, 1)))


class TestMseL1:
    def test_mse_value_and_grad(self):
        loss, grad = mse(np.array([1.0, 3.0]), np.array([0.0, 1.0]))
        assert np.isclose(loss, (1 + 4) / 2)
        assert np.allclose(grad, [1.0, 2.0])

    def test_l1_value_and_subgradient(self):
        loss, grad = l1(np.array([2.0, -1.0]), np.array([0.0, 0.0]))
        assert np.isclose(loss, 1.5)
        assert np.allclose(grad, [0.5, -0.5])

    def test_zero_at_match(self):
        x = np.array([1.0, 2.0])
        assert mse(x, x)[0] == 0.0
        assert l1(x, x)[0] == 0.0

    @pytest.mark.parametrize("fn", [mse, l1])
    def test_shape_mismatch_raises(self, fn):
        with pytest.raises(ValueError):
            fn(np.zeros(2), np.zeros(3))


class TestHingeThreshold:
    def test_inactive_below_delta(self):
        loss, dloss = hinge_threshold(0.05, 0.1)
        assert loss == 0.0
        assert dloss == 0.0

    def test_active_above_delta(self):
        loss, dloss = hinge_threshold(0.3, 0.1)
        assert np.isclose(loss, 0.2)
        assert dloss == 1.0

    def test_rejects_negative_delta(self):
        with pytest.raises(ValueError):
            hinge_threshold(1.0, -0.1)

    @settings(max_examples=50, deadline=None)
    @given(
        value=st.floats(0, 100, allow_nan=False),
        delta=st.floats(0, 100, allow_nan=False),
    )
    def test_hinge_is_relu_of_excess(self, value, delta):
        loss, _ = hinge_threshold(value, delta)
        assert np.isclose(loss, max(0.0, value - delta))
