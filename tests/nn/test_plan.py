"""Fast conv engine vs the retained reference oracle.

The contract of the engine (ISSUE 1): the stride-trick/bincount fast paths
must match the ``_reference`` implementations bit-for-bit in float64 and to
1e-5 in float32, across overlapping and non-overlapping geometries, in both
2-D and 1-D, and must stay exact adjoints of each other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import (
    _reference_col2im,
    _reference_col2im_1d,
    _reference_im2col,
    _reference_im2col_1d,
    col2im,
    im2col,
    reference_ops,
)
from repro.nn.plan import clear_plan_cache, conv_plan, plan_cache_info

# (shape, kernel, padding, stride): DCGAN overlap, unit-stride overlap,
# exact tiling, gapped tiling (stride > kernel), and 1x1, in 2-D and 1-D.
GEOMETRIES_2D = [
    ((2, 3, 8, 8), 4, 1, 2),
    ((2, 3, 6, 6), 3, 1, 1),
    ((1, 2, 4, 4), 2, 0, 2),
    ((2, 1, 8, 8), 2, 0, 3),
    ((2, 2, 4, 4), 1, 0, 1),
    ((3, 5, 12, 12), 5, 2, 1),
]
GEOMETRIES_1D = [
    ((3, 2, 8), 4, 1, 2),
    ((2, 3, 9), 3, 0, 3),
    ((2, 4, 10), 3, 1, 1),
    ((1, 1, 6), 2, 0, 2),
]


def _reference(x_or_cols, shape, kernel, padding, stride, direction):
    if len(shape) == 4:
        fn = _reference_im2col if direction == "fwd" else _reference_col2im
    else:
        fn = _reference_im2col_1d if direction == "fwd" else _reference_col2im_1d
    if direction == "fwd":
        return fn(x_or_cols, kernel, padding, stride)
    return fn(x_or_cols, shape, kernel, padding, stride)


class TestEquivalenceFloat64:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_im2col_bit_for_bit(self, shape, kernel, padding, stride):
        x = np.random.default_rng(hash(shape) % 2**32).standard_normal(shape)
        fast = im2col(x, kernel, padding, stride)
        ref = _reference(x, shape, kernel, padding, stride, "fwd")
        assert fast.dtype == np.float64
        assert np.array_equal(fast, ref)

    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_col2im_bit_for_bit(self, shape, kernel, padding, stride):
        rng = np.random.default_rng(hash(shape) % 2**32)
        cols = rng.standard_normal(conv_plan(shape, kernel, padding, stride).cols_shape)
        fast = col2im(cols, shape, kernel, padding, stride)
        ref = _reference(cols, shape, kernel, padding, stride, "bwd")
        assert fast.dtype == np.float64
        assert fast.shape == tuple(shape)
        assert np.array_equal(fast, ref)


class TestEquivalenceFloat32:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_im2col_close(self, shape, kernel, padding, stride):
        x = np.random.default_rng(0).standard_normal(shape).astype(np.float32)
        fast = im2col(x, kernel, padding, stride)
        ref = _reference(x, shape, kernel, padding, stride, "fwd")
        assert fast.dtype == np.float32
        assert np.allclose(fast, ref, atol=1e-5)

    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_col2im_close(self, shape, kernel, padding, stride):
        rng = np.random.default_rng(1)
        plan = conv_plan(shape, kernel, padding, stride)
        cols = rng.standard_normal(plan.cols_shape).astype(np.float32)
        fast = col2im(cols, shape, kernel, padding, stride)
        ref = _reference(cols, shape, kernel, padding, stride, "bwd")
        assert fast.dtype == np.float32
        assert np.allclose(fast, ref, atol=1e-5)


class TestAdjointness:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_inner_products_match(self, shape, kernel, padding, stride, dtype):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint property."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal(shape).astype(dtype)
        cols = im2col(x, kernel, padding, stride)
        c = rng.standard_normal(cols.shape).astype(dtype)
        lhs = float(np.sum(cols.astype(np.float64) * c.astype(np.float64)))
        back = col2im(c, shape, kernel, padding, stride)
        rhs = float(np.sum(x.astype(np.float64) * back.astype(np.float64)))
        tol = 1e-8 if dtype is np.float64 else 1e-3
        assert np.isclose(lhs, rhs, rtol=tol)


class TestRandomGeometries:
    @settings(max_examples=40, deadline=None)
    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 3),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 4),
        out=st.integers(1, 4),
        padding=st.integers(0, 2),
        seed=st.integers(0, 10_000),
    )
    def test_fast_matches_reference(self, batch, channels, kernel, stride,
                                    out, padding, seed):
        """Any exact geometry: fast == reference bit-for-bit in float64."""
        size = (out - 1) * stride + kernel - 2 * padding
        if size < 1 or kernel > size + 2 * padding:
            return
        shape = (batch, channels, size, size)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        fast = im2col(x, kernel, padding, stride)
        assert np.array_equal(fast, _reference_im2col(x, kernel, padding, stride))
        c = rng.standard_normal(fast.shape)
        assert np.array_equal(
            col2im(c, shape, kernel, padding, stride),
            _reference_col2im(c, shape, kernel, padding, stride),
        )


class TestPlanCache:
    def test_same_geometry_returns_same_plan(self):
        a = conv_plan((2, 3, 8, 8), 4, 1, 2)
        b = conv_plan((2, 3, 8, 8), 4, 1, 2)
        assert a is b

    def test_numpy_ints_hit_same_entry(self):
        shape = tuple(np.int64(s) for s in (2, 3, 8, 8))
        assert conv_plan(shape, 4, 1, 2) is conv_plan((2, 3, 8, 8), 4, 1, 2)

    def test_distinct_geometries_get_distinct_plans(self):
        assert conv_plan((2, 3, 8, 8), 4, 1, 2) is not conv_plan((4, 3, 8, 8), 4, 1, 2)

    def test_repeated_conv_calls_hit_cache(self):
        clear_plan_cache()
        x = np.zeros((2, 1, 8, 8))
        im2col(x, 4, 1, 2)
        before = plan_cache_info().hits
        im2col(x, 4, 1, 2)
        im2col(x, 4, 1, 2)
        assert plan_cache_info().hits >= before + 2

    def test_overlap_classification(self):
        assert conv_plan((1, 1, 8, 8), 4, 1, 2).overlapping
        assert not conv_plan((1, 1, 8, 8), 2, 0, 2).overlapping
        assert not conv_plan((1, 1, 8, 8), 2, 0, 3).overlapping

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="expected"):
            conv_plan((8, 8), 4, 1, 2)


class TestReferenceDispatch:
    def test_context_switches_and_restores(self):
        import repro.nn.im2col as mod

        x = np.random.default_rng(2).standard_normal((2, 2, 8, 8))
        assert not mod._USE_REFERENCE
        with reference_ops():
            assert mod._USE_REFERENCE
            inside = im2col(x, 4, 1, 2)
        assert not mod._USE_REFERENCE
        assert np.array_equal(inside, im2col(x, 4, 1, 2))

    def test_geometry_errors_name_full_geometry(self):
        from repro.nn.im2col import conv_output_size

        with pytest.raises(ValueError, match="stride=2"):
            conv_output_size(5, 4, 1, 2)
        with pytest.raises(ValueError, match="stride=1"):
            conv_output_size(2, 8, 0, 1)

    def test_col2im_rejects_mismatched_cols(self):
        with pytest.raises(ValueError, match="does not match"):
            col2im(np.zeros((3, 3)), (1, 1, 8, 8), 4, 1, 2)
