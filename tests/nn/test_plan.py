"""Fast conv engine vs the retained reference oracle.

The contract of the engine (ISSUE 1, re-cut batch-major in ISSUE 4): the
blocked stride-trick/parity-scatter fast paths must match the
``_reference`` implementations — through the explicit layout adapters
``cols_to_reference``/``cols_from_reference`` — bit-for-bit in float64
and to 1e-5 in float32, across overlapping and non-overlapping
geometries, in both 2-D and 1-D, across batch block sizes (single-item,
partial, and full-batch blocks), and must stay exact adjoints of each
other.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import (
    _reference_col2im,
    _reference_col2im_1d,
    _reference_im2col,
    _reference_im2col_1d,
    col2im,
    cols_from_reference,
    cols_to_reference,
    im2col,
    reference_ops,
)
from repro.nn.plan import (
    clear_plan_cache,
    conv_plan,
    plan_cache_info,
    set_workspace_budget,
    workspace_budget,
)

# (shape, kernel, padding, stride): DCGAN overlap, unit-stride overlap,
# exact tiling, gapped tiling (stride > kernel), and 1x1, in 2-D and 1-D.
GEOMETRIES_2D = [
    ((2, 3, 8, 8), 4, 1, 2),
    ((2, 3, 6, 6), 3, 1, 1),
    ((1, 2, 4, 4), 2, 0, 2),
    ((2, 1, 8, 8), 2, 0, 3),
    ((2, 2, 4, 4), 1, 0, 1),
    ((3, 5, 12, 12), 5, 2, 1),
]
GEOMETRIES_1D = [
    ((3, 2, 8), 4, 1, 2),
    ((2, 3, 9), 3, 0, 3),
    ((2, 4, 10), 3, 1, 1),
    ((1, 1, 6), 2, 0, 2),
]

#: Workspace budgets forcing different batch blockings: 1 byte => one
#: record per block (with partial tail coverage from odd batch sizes),
#: one-item-sized => exercises the boundary, default => full batch.
BLOCK_BUDGETS = [1, None]


@pytest.fixture(params=BLOCK_BUDGETS, ids=["block1", "default"])
def block_budget(request):
    previous = workspace_budget()
    set_workspace_budget(request.param)
    yield request.param
    set_workspace_budget(previous)


def _reference(x_or_cols, shape, kernel, padding, stride, direction):
    if len(shape) == 4:
        fn = _reference_im2col if direction == "fwd" else _reference_col2im
    else:
        fn = _reference_im2col_1d if direction == "fwd" else _reference_col2im_1d
    if direction == "fwd":
        return fn(x_or_cols, kernel, padding, stride)
    return fn(x_or_cols, shape, kernel, padding, stride)


class TestEquivalenceFloat64:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_im2col_bit_for_bit(self, shape, kernel, padding, stride,
                                block_budget):
        x = np.random.default_rng(hash(shape) % 2**32).standard_normal(shape)
        fast = im2col(x, kernel, padding, stride)
        ref = _reference(x, shape, kernel, padding, stride, "fwd")
        assert fast.dtype == np.float64
        assert fast.shape == conv_plan(shape, kernel, padding, stride).cols_shape(shape[0])
        assert np.array_equal(cols_to_reference(fast, shape[0]), ref)

    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_col2im_bit_for_bit(self, shape, kernel, padding, stride,
                                block_budget):
        rng = np.random.default_rng(hash(shape) % 2**32)
        plan = conv_plan(shape, kernel, padding, stride)
        ref_cols = rng.standard_normal((plan.rows, plan.n_positions * shape[0]))
        fast = col2im(cols_from_reference(ref_cols, shape[0]), shape,
                      kernel, padding, stride)
        ref = _reference(ref_cols, shape, kernel, padding, stride, "bwd")
        assert fast.dtype == np.float64
        assert fast.shape == tuple(shape)
        assert np.array_equal(fast, ref)


class TestEquivalenceFloat32:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_im2col_close(self, shape, kernel, padding, stride, block_budget):
        x = np.random.default_rng(0).standard_normal(shape).astype(np.float32)
        fast = im2col(x, kernel, padding, stride)
        ref = _reference(x, shape, kernel, padding, stride, "fwd")
        assert fast.dtype == np.float32
        assert np.allclose(cols_to_reference(fast, shape[0]), ref, atol=1e-5)

    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_col2im_close(self, shape, kernel, padding, stride, block_budget):
        rng = np.random.default_rng(1)
        plan = conv_plan(shape, kernel, padding, stride)
        cols = rng.standard_normal(plan.cols_shape(shape[0])).astype(np.float32)
        fast = col2im(cols, shape, kernel, padding, stride)
        ref = _reference(cols_to_reference(cols, shape[0]), shape, kernel,
                         padding, stride, "bwd")
        assert fast.dtype == np.float32
        assert np.allclose(fast, ref, atol=1e-5)


class TestLayoutAdapters:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    def test_adapters_are_mutual_inverses(self, shape, kernel, padding, stride):
        plan = conv_plan(shape, kernel, padding, stride)
        cols = np.arange(np.prod(plan.cols_shape(shape[0])), dtype=np.float64)
        cols = cols.reshape(plan.cols_shape(shape[0]))
        ref = cols_to_reference(cols, shape[0])
        assert ref.shape == (plan.rows, plan.n_positions * shape[0])
        assert np.array_equal(cols_from_reference(ref, shape[0]), cols)

    def test_adapters_reject_impossible_batch(self):
        with pytest.raises(ValueError, match="cannot hold batch"):
            cols_to_reference(np.zeros((9, 4)), 2)
        with pytest.raises(ValueError, match="cannot hold batch"):
            cols_from_reference(np.zeros((4, 9)), 2)


class TestAdjointness:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             GEOMETRIES_2D + GEOMETRIES_1D)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_inner_products_match(self, shape, kernel, padding, stride, dtype):
        """<im2col(x), c> == <x, col2im(c)> — the defining adjoint property."""
        rng = np.random.default_rng(7)
        x = rng.standard_normal(shape).astype(dtype)
        cols = im2col(x, kernel, padding, stride)
        c = rng.standard_normal(cols.shape).astype(dtype)
        lhs = float(np.sum(cols.astype(np.float64) * c.astype(np.float64)))
        back = col2im(c, shape, kernel, padding, stride)
        rhs = float(np.sum(x.astype(np.float64) * back.astype(np.float64)))
        tol = 1e-8 if dtype is np.float64 else 1e-3
        assert np.isclose(lhs, rhs, rtol=tol)


class TestRandomGeometries:
    @settings(max_examples=40, deadline=None)
    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 3),
        kernel=st.integers(1, 5),
        stride=st.integers(1, 4),
        out=st.integers(1, 4),
        padding=st.integers(0, 2),
        seed=st.integers(0, 10_000),
    )
    def test_fast_matches_reference(self, batch, channels, kernel, stride,
                                    out, padding, seed):
        """Any exact geometry: fast == reference bit-for-bit in float64."""
        size = (out - 1) * stride + kernel - 2 * padding
        if size < 1 or kernel > size + 2 * padding:
            return
        shape = (batch, channels, size, size)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(shape)
        fast = im2col(x, kernel, padding, stride)
        assert np.array_equal(cols_to_reference(fast, batch),
                              _reference_im2col(x, kernel, padding, stride))
        c = rng.standard_normal(fast.shape)
        assert np.array_equal(
            col2im(c, shape, kernel, padding, stride),
            _reference_col2im(cols_to_reference(c, batch), shape, kernel,
                              padding, stride),
        )


class TestBlockInvariance:
    @pytest.mark.parametrize("shape,kernel,padding,stride",
                             [((5, 2, 8, 8), 4, 1, 2), ((7, 3, 9), 3, 1, 1)])
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_every_blocking_is_bit_identical(self, shape, kernel, padding,
                                             stride, dtype):
        """Block size never changes a single bit of gather or scatter.

        Budgets are chosen so blocks of one record, a partial tail, and
        the whole batch all occur (batch sizes 5 and 7 are not multiples
        of the intermediate block counts).
        """
        rng = np.random.default_rng(3)
        x = rng.standard_normal(shape).astype(dtype)
        plan = conv_plan(shape, kernel, padding, stride)
        item_bytes = plan.n_positions * plan.rows * x.dtype.itemsize
        cols = rng.standard_normal(plan.cols_shape(shape[0])).astype(dtype)
        results = []
        for budget in (1, 2 * item_bytes, 3 * item_bytes, None):
            previous = set_workspace_budget(budget)
            try:
                results.append((im2col(x, kernel, padding, stride),
                                col2im(cols, shape, kernel, padding, stride)))
            finally:
                set_workspace_budget(previous)
        for gathered, scattered in results[1:]:
            assert np.array_equal(gathered, results[0][0])
            assert np.array_equal(scattered, results[0][1])


class TestPlanCache:
    def test_same_geometry_returns_same_plan(self):
        a = conv_plan((2, 3, 8, 8), 4, 1, 2)
        b = conv_plan((2, 3, 8, 8), 4, 1, 2)
        assert a is b

    def test_numpy_ints_hit_same_entry(self):
        shape = tuple(np.int64(s) for s in (2, 3, 8, 8))
        assert conv_plan(shape, 4, 1, 2) is conv_plan((2, 3, 8, 8), 4, 1, 2)

    def test_plans_are_batch_free(self):
        """Every batch size of one record geometry shares one plan."""
        assert conv_plan((2, 3, 8, 8), 4, 1, 2) is conv_plan((4, 3, 8, 8), 4, 1, 2)
        assert conv_plan((1, 3, 8, 8), 4, 1, 2).cols_shape(4) == (4 * 16, 48)

    def test_distinct_geometries_get_distinct_plans(self):
        assert conv_plan((2, 3, 8, 8), 4, 1, 2) is not conv_plan((2, 4, 8, 8), 4, 1, 2)

    def test_repeated_conv_calls_hit_cache(self):
        clear_plan_cache()
        x = np.zeros((2, 1, 8, 8))
        im2col(x, 4, 1, 2)
        before = plan_cache_info().hits
        im2col(x, 4, 1, 2)
        im2col(x, 4, 1, 2)
        assert plan_cache_info().hits >= before + 2

    def test_overlap_classification(self):
        assert conv_plan((1, 1, 8, 8), 4, 1, 2).overlapping
        assert not conv_plan((1, 1, 8, 8), 2, 0, 2).overlapping
        assert not conv_plan((1, 1, 8, 8), 2, 0, 3).overlapping

    def test_offset_groups_cover_each_offset_once(self):
        """Parity groups partition [0, kernel) for any overlapping geometry."""
        for kernel, stride in [(4, 2), (3, 2), (5, 3), (3, 1), (5, 2)]:
            size = 2 * stride + kernel  # any exact geometry
            plan = conv_plan((1, 1, size), kernel, 0, stride)
            offsets = sorted(
                m * stride + rho
                for m, cnt in plan.offset_groups
                for rho in range(cnt)
            )
            assert offsets == list(range(kernel))

    def test_batch_block_respects_budget(self):
        plan = conv_plan((1, 2, 8, 8), 4, 1, 2)
        per_item = plan.n_positions * plan.rows * 8
        previous = set_workspace_budget(3 * per_item)
        try:
            assert plan.batch_block(8) == 3
        finally:
            set_workspace_budget(previous)
        assert plan.batch_block(8) >= 1

    def test_workspace_budget_validation(self):
        with pytest.raises(ValueError, match="positive"):
            set_workspace_budget(0)

    def test_rejects_bad_rank(self):
        with pytest.raises(ValueError, match="expected"):
            conv_plan((8, 8), 4, 1, 2)


class TestReferenceDispatch:
    def test_context_switches_and_restores(self):
        import repro.nn.im2col as mod

        x = np.random.default_rng(2).standard_normal((2, 2, 8, 8))
        assert not mod._USE_REFERENCE
        with reference_ops():
            assert mod._USE_REFERENCE
            inside = im2col(x, 4, 1, 2)
        assert not mod._USE_REFERENCE
        # The dispatch adapts the oracle to the batch-major public layout,
        # so results are mode-independent.
        assert np.array_equal(inside, im2col(x, 4, 1, 2))

    def test_reference_col2im_round_trips_through_adapter(self):
        shape = (2, 2, 8, 8)
        rng = np.random.default_rng(5)
        cols = rng.standard_normal(conv_plan(shape, 4, 1, 2).cols_shape(2))
        with reference_ops():
            inside = col2im(cols, shape, 4, 1, 2)
        assert np.array_equal(inside, col2im(cols, shape, 4, 1, 2))

    def test_geometry_errors_name_full_geometry(self):
        from repro.nn.im2col import conv_output_size

        with pytest.raises(ValueError, match="stride=2"):
            conv_output_size(5, 4, 1, 2)
        with pytest.raises(ValueError, match="stride=1"):
            conv_output_size(2, 8, 0, 1)

    def test_col2im_rejects_mismatched_cols(self):
        with pytest.raises(ValueError, match="does not match"):
            col2im(np.zeros((3, 3)), (1, 1, 8, 8), 4, 1, 2)
