"""Activation layers: values, gradients, and functional properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.nn import LeakyReLU, ReLU, Sigmoid, Tanh

from tests.nn.gradcheck import check_input_grad

FLOATS = hnp.arrays(
    np.float64, (3, 4),
    elements=st.floats(-20, 20, allow_nan=False, allow_infinity=False),
)


class TestReLU:
    def test_values(self):
        x = np.array([[-2.0, -0.5, 0.0, 0.5, 2.0]])
        assert np.allclose(ReLU().forward(x), [[0, 0, 0, 0.5, 2.0]])

    def test_gradient(self, rng):
        check_input_grad(ReLU(), rng.standard_normal((4, 5)) + 0.1)

    @settings(max_examples=30, deadline=None)
    @given(x=FLOATS)
    def test_non_negative_and_idempotent(self, x):
        layer = ReLU()
        out = layer.forward(x)
        assert np.all(out >= 0)
        assert np.allclose(layer.forward(out), out)


class TestLeakyReLU:
    def test_values(self):
        x = np.array([[-1.0, 1.0]])
        assert np.allclose(LeakyReLU(0.2).forward(x), [[-0.2, 1.0]])

    def test_gradient(self, rng):
        check_input_grad(LeakyReLU(0.2), rng.standard_normal((4, 5)) + 0.1)

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            LeakyReLU(-0.1)

    @settings(max_examples=30, deadline=None)
    @given(x=FLOATS)
    def test_preserves_sign_structure(self, x):
        """LeakyReLU is identity on x >= 0 and non-positive on x < 0.

        (Exact sign equality would fail on subnormals where 0.2*x
        underflows to -0.0.)
        """
        out = LeakyReLU(0.2).forward(x)
        pos = x >= 0
        assert np.allclose(out[pos], x[pos])
        assert np.all(out[~pos] <= 0)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_bitmask_matches_reference_bit_for_bit(self, rng, dtype):
        """The bitmask path equals the retained scale-array oracle exactly.

        Zeros are included deliberately: the two idioms must agree on the
        x == 0 branch as well.
        """
        layer = LeakyReLU(0.2)
        x = rng.standard_normal((16, 32)).astype(dtype)
        x[::3, ::4] = 0.0
        grad = rng.standard_normal((16, 32)).astype(dtype)

        out = layer.forward(x)
        dx = layer.backward(grad)
        ref_out, scale = layer._reference_forward(x)
        ref_dx = layer._reference_backward(grad, scale)

        assert out.dtype == dtype and dx.dtype == dtype
        assert np.array_equal(out, ref_out)
        assert np.array_equal(dx, ref_dx)

    def test_cached_state_is_a_bitmask(self, rng):
        """The forward cache is one bool per element, not a float array."""
        layer = LeakyReLU(0.2)
        layer.forward(rng.standard_normal((4, 4)))
        assert layer._mask.dtype == np.bool_


class TestSigmoid:
    def test_range_and_midpoint(self):
        layer = Sigmoid()
        assert np.isclose(layer.forward(np.zeros((1, 1)))[0, 0], 0.5)
        # Extreme logits saturate to the closed interval bounds in float64
        # without overflowing.
        out = layer.forward(np.array([[-500.0, 500.0]]))
        assert np.all((out >= 0) & (out <= 1))
        assert np.all(np.isfinite(out))

    def test_gradient(self, rng):
        check_input_grad(Sigmoid(), rng.standard_normal((3, 4)))

    @settings(max_examples=30, deadline=None)
    @given(x=FLOATS)
    def test_symmetry(self, x):
        """sigmoid(-x) == 1 - sigmoid(x)."""
        layer = Sigmoid()
        a = layer.forward(x)
        b = layer.forward(-x)
        assert np.allclose(a + b, 1.0, atol=1e-12)


class TestTanh:
    def test_range(self):
        out = Tanh().forward(np.array([[-50.0, 0.0, 50.0]]))
        assert np.allclose(out, [[-1.0, 0.0, 1.0]], atol=1e-12)

    def test_gradient(self, rng):
        check_input_grad(Tanh(), rng.standard_normal((3, 4)))

    @settings(max_examples=30, deadline=None)
    @given(x=FLOATS)
    def test_odd_function(self, x):
        layer = Tanh()
        assert np.allclose(layer.forward(-x), -layer.forward(x))


class TestBackwardBeforeForward:
    @pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh])
    def test_raises(self, layer_cls):
        with pytest.raises(RuntimeError):
            layer_cls().backward(np.ones((1, 1)))
