"""Numerical gradient checking helpers shared by the nn tests."""

from __future__ import annotations

import numpy as np


def numerical_input_grad(layer, x, upstream, training=True, eps=1e-6):
    """Central-difference gradient of sum(layer(x) * upstream) w.r.t. x."""
    x = np.array(x, dtype=np.float64)
    num = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        plus = float(np.sum(layer.forward(x, training=training) * upstream))
        x[idx] = orig - eps
        minus = float(np.sum(layer.forward(x, training=training) * upstream))
        x[idx] = orig
        num[idx] = (plus - minus) / (2 * eps)
    return num


def numerical_param_grad(layer, param, x, upstream, training=True, eps=1e-6):
    """Central-difference gradient w.r.t. one Parameter's data."""
    num = np.zeros_like(param.data)
    it = np.nditer(param.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = param.data[idx]
        param.data[idx] = orig + eps
        plus = float(np.sum(layer.forward(x, training=training) * upstream))
        param.data[idx] = orig - eps
        minus = float(np.sum(layer.forward(x, training=training) * upstream))
        param.data[idx] = orig
        num[idx] = (plus - minus) / (2 * eps)
    return num


def check_input_grad(layer, x, training=True, seed=0, atol=1e-7):
    """Assert analytic input gradient matches the numerical one."""
    rng = np.random.default_rng(seed)
    out = layer.forward(x, training=training)
    upstream = rng.standard_normal(out.shape)
    layer.zero_grad()
    analytic = layer.backward(upstream)
    numeric = numerical_input_grad(layer, x, upstream, training=training)
    assert np.allclose(analytic, numeric, atol=atol), (
        f"input grad mismatch: max err {np.abs(analytic - numeric).max():.2e}"
    )


def check_param_grads(layer, x, training=True, seed=0, atol=1e-7):
    """Assert analytic parameter gradients match numerical ones."""
    rng = np.random.default_rng(seed)
    out = layer.forward(x, training=training)
    upstream = rng.standard_normal(out.shape)
    layer.zero_grad()
    layer.backward(upstream)
    for param in layer.parameters():
        numeric = numerical_param_grad(layer, param, x, upstream, training=training)
        assert np.allclose(param.grad, numeric, atol=atol), (
            f"grad mismatch for {param.name}: "
            f"max err {np.abs(param.grad - numeric).max():.2e}"
        )
