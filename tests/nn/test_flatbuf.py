"""FlatParameterBuffer: view aliasing, dtype grouping, optimizer interplay."""

import numpy as np
import pytest

from repro.nn import Adam, Dense, FlatParameterBuffer, Sequential
from repro.nn.layers import Parameter


def make_params(dtype=np.float64):
    rng = np.random.default_rng(0)
    return [
        Parameter(rng.standard_normal((3, 4)).astype(dtype), "w"),
        Parameter(rng.standard_normal((4,)).astype(dtype), "b"),
        Parameter(rng.standard_normal((2, 2, 2)).astype(dtype), "k"),
    ]


class TestFlattening:
    def test_values_preserved(self):
        params = make_params()
        before = [p.data.copy() for p in params]
        FlatParameterBuffer(params)
        for p, old in zip(params, before):
            assert np.array_equal(p.data, old)

    def test_grads_preserved(self):
        params = make_params()
        params[0].grad += 3.0
        FlatParameterBuffer(params)
        assert np.all(params[0].grad == 3.0)
        assert np.all(params[1].grad == 0.0)

    def test_params_view_the_buffer(self):
        params = make_params()
        flat = FlatParameterBuffer(params)
        (group,) = flat.groups
        # Writing the buffer is visible through every parameter...
        group.data[...] = 7.0
        for p in params:
            assert np.all(p.data == 7.0)
        # ...and parameter writes land in the buffer.
        params[0].data[...] = -1.0
        assert np.all(group.data[group.slices[0]] == -1.0)

    def test_gradient_accumulation_lands_in_buffer(self):
        params = make_params()
        flat = FlatParameterBuffer(params)
        params[1].grad += 5.0
        (group,) = flat.groups
        assert np.all(group.grad[group.slices[1]] == 5.0)

    def test_zero_grad_zeroes_views(self):
        params = make_params()
        flat = FlatParameterBuffer(params)
        for p in params:
            p.grad += 2.0
        flat.zero_grad()
        for p in params:
            assert np.all(p.grad == 0.0)

    def test_n_elements(self):
        flat = FlatParameterBuffer(make_params())
        assert flat.n_elements == 12 + 4 + 8

    def test_dtype_grouping(self):
        p32 = Parameter(np.ones(3, dtype=np.float32), "a")
        p64 = Parameter(np.ones(2, dtype=np.float64), "b")
        flat = FlatParameterBuffer([p32, p64])
        assert len(flat.groups) == 2
        assert {g.dtype for g in flat.groups} == {np.dtype(np.float32),
                                                 np.dtype(np.float64)}
        assert p32.data.dtype == np.float32
        assert p64.data.dtype == np.float64

    def test_rejects_empty_and_duplicates(self):
        with pytest.raises(ValueError, match="empty"):
            FlatParameterBuffer([])
        p = Parameter(np.ones(2))
        with pytest.raises(ValueError, match="duplicate"):
            FlatParameterBuffer([p, p])

    def test_bind_views_rejects_mismatch(self):
        p = Parameter(np.ones((2, 2)))
        with pytest.raises(ValueError, match="does not match"):
            p.bind_views(np.zeros(3), np.zeros(3))
        with pytest.raises(ValueError, match="does not match"):
            p.bind_views(np.zeros((2, 2), dtype=np.float32),
                         np.zeros((2, 2), dtype=np.float32))


class TestSequentialIntegration:
    def test_flatten_parameters_round_trip(self, rng):
        net = Sequential([Dense(5, 4, rng=1), Dense(4, 2, rng=2)])
        x = rng.standard_normal((8, 5))
        expected = net.forward(x)
        flat = net.flatten_parameters()
        assert flat.params == net.parameters()
        # Forward through the views is unchanged.
        assert np.array_equal(net.forward(x), expected)

    def test_training_through_views_matches_unflattened(self, rng):
        """A full fit through buffer views equals the never-flattened run."""
        def run(flatten):
            net = Sequential([Dense(5, 4, rng=1), Dense(4, 2, rng=2)])
            opt = (Adam(net.flatten_parameters(), lr=1e-3) if flatten
                   else Adam(net.parameters(), lr=1e-3, fused=False))
            data_rng = np.random.default_rng(7)
            x = data_rng.standard_normal((16, 5))
            y = data_rng.standard_normal((16, 2))
            for _ in range(10):
                opt.zero_grad()
                out = net.forward(x)
                net.backward(out - y)
                opt.step()
            return [p.data.copy() for p in net.parameters()]

        for a, b in zip(run(True), run(False)):
            assert np.array_equal(a, b)

    def test_optimizer_reuses_existing_buffer(self):
        net = Sequential([Dense(3, 3, rng=0)])
        flat = net.flatten_parameters()
        opt = Adam(flat, lr=1e-3)
        assert opt._flat is flat
        assert opt.fused
        with pytest.raises(ValueError, match="per-parameter"):
            Adam(flat, lr=1e-3, fused=False)

    def test_reflatten_refused(self):
        """A second buffer over bound params would orphan the first."""
        params = make_params()
        FlatParameterBuffer(params)
        with pytest.raises(ValueError, match="already materialized"):
            FlatParameterBuffer(params)

    def test_flatten_parameters_idempotent(self):
        net = Sequential([Dense(3, 3, rng=0)])
        first = net.flatten_parameters()
        assert net.flatten_parameters() is first

    def test_flatten_after_fused_optimizer_returns_its_buffer(self):
        """The footgun case: flattening after Adam must not detach it."""
        net = Sequential([Dense(3, 3, rng=0)])
        opt = Adam(net.parameters(), lr=0.1)  # fused by default
        flat = net.flatten_parameters()
        assert flat is opt._flat
        # A second optimizer built this way shares the live buffer.
        opt2 = Adam(net.flatten_parameters(), lr=0.01)
        x = np.ones((2, 3))
        out = net.forward(x)
        net.backward(out)
        before = net.parameters()[0].data.copy()
        opt2.step()
        assert not np.array_equal(net.parameters()[0].data, before)

    def test_partial_overlap_rejected(self):
        params = make_params()
        FlatParameterBuffer(params[:2])
        with pytest.raises(ValueError, match="partially overlapping"):
            FlatParameterBuffer.owner_of(params)


class TestSharedMemoryPrimitives:
    """The broadcast/reduce layer the data-parallel trainer is built on."""

    def test_group_specs_describe_layout(self):
        flat = FlatParameterBuffer(make_params())
        assert flat.group_specs() == [(np.dtype(np.float64), 24)]

    def test_group_specs_per_dtype(self):
        params = make_params() + make_params(np.float32)
        flat = FlatParameterBuffer(params)
        assert sorted(flat.group_specs(), key=lambda s: s[0].name) == [
            (np.dtype(np.float32), 24), (np.dtype(np.float64), 24),
        ]

    @staticmethod
    def backing_for(flat, fill=0.0):
        return [np.full(size, fill, dtype=dtype)
                for dtype, size in flat.group_specs()]

    def test_rebind_storage_preserves_values_and_aliasing(self):
        params = make_params()
        flat = FlatParameterBuffer(params)
        expected = [p.data.copy() for p in params]
        backing = self.backing_for(flat)
        flat.rebind_storage(data_backing=backing)
        for p, old in zip(params, expected):
            assert np.array_equal(p.data, old)
        # The new storage is live: writes to it appear through the params.
        backing[0][...] = 9.0
        for p in params:
            assert np.all(p.data == 9.0)

    def test_rebind_storage_shape_mismatch_rejected(self):
        flat = FlatParameterBuffer(make_params())
        with pytest.raises(ValueError, match="does not match"):
            flat.rebind_storage(data_backing=[np.empty(7)])

    def test_rebind_storage_wrong_count_rejected(self):
        flat = FlatParameterBuffer(make_params())
        with pytest.raises(ValueError, match="expected 1 data buffers"):
            flat.rebind_storage(data_backing=[np.empty(24), np.empty(24)])

    def test_optimizer_steps_through_rebound_storage(self):
        """An Adam built before rebinding keeps working after it — and its
        updates land in the new backing (the broadcast property)."""
        net = Sequential([Dense(3, 3, rng=0)])
        flat = net.flatten_parameters()
        opt = Adam(flat, lr=0.1)
        backing = self.backing_for(flat)
        flat.rebind_storage(data_backing=backing)
        x = np.ones((2, 3))
        net.backward(net.forward(x))
        before = backing[0].copy()
        opt.step()
        assert not np.array_equal(backing[0], before)
        (group,) = flat.groups
        assert group.data is backing[0]

    def test_export_import_data_roundtrip(self):
        flat = FlatParameterBuffer(make_params())
        out = self.backing_for(flat)
        flat.export_data(out)
        assert np.array_equal(out[0], flat.groups[0].data)
        flat.groups[0].data[...] = 0.0
        flat.import_data(out)
        assert np.array_equal(flat.groups[0].data, out[0])

    def test_export_grads_applies_scale_in_group_dtype(self):
        params = make_params(np.float32)
        flat = FlatParameterBuffer(params)
        for p in params:
            p.grad += 2.0
        out = self.backing_for(flat)
        flat.export_grads(out, scale=0.25)
        assert out[0].dtype == np.float32
        assert np.all(out[0] == np.float32(2.0) * np.float32(0.25))

    def test_export_grads_unscaled(self):
        flat = FlatParameterBuffer(make_params())
        flat.groups[0].grad[...] = 3.5
        out = self.backing_for(flat)
        flat.export_grads(out)
        assert np.all(out[0] == 3.5)

    def test_reduce_grads_is_an_ordered_sum(self):
        flat = FlatParameterBuffer(make_params())
        rng = np.random.default_rng(3)
        shards = [self.backing_for(flat) for _ in range(3)]
        for shard in shards:
            shard[0][...] = rng.standard_normal(shard[0].size)
        flat.reduce_grads(shards)
        expected = shards[0][0].copy()
        expected += shards[1][0]
        expected += shards[2][0]
        assert np.array_equal(flat.groups[0].grad, expected)

    def test_reduce_grads_overwrites_stale_gradients(self):
        flat = FlatParameterBuffer(make_params())
        flat.groups[0].grad[...] = 123.0  # stale junk must not accumulate
        shard = self.backing_for(flat, fill=1.0)
        flat.reduce_grads([shard])
        assert np.all(flat.groups[0].grad == 1.0)

    def test_reduce_grads_empty_rejected(self):
        flat = FlatParameterBuffer(make_params())
        with pytest.raises(ValueError, match="at least one shard"):
            flat.reduce_grads([])
