"""Optimizers: convergence on known problems, state handling, validation."""

import numpy as np
import pytest

from repro.nn import SGD, Adam
from repro.nn.layers import Parameter


def quadratic_step(param, target):
    """Gradient of 0.5 * ||w - target||^2."""
    param.grad[...] = param.data - target


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        target = np.array([3.0, -1.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            quadratic_step(p, target)
            opt.step()
        assert np.allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                p.zero_grad()
                quadratic_step(p, np.zeros(1))
                opt.step()
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_rejects_bad_params(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -7.0]))
        target = np.array([1.0, 2.0])
        opt = Adam([p], lr=0.05)
        for _ in range(2000):
            p.zero_grad()
            quadratic_step(p, target)
            opt.step()
        # Adam oscillates near the optimum; tolerance reflects that.
        assert np.allclose(p.data, target, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step has magnitude ~lr."""
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.grad[...] = 123.0  # any positive gradient
        opt.step()
        assert np.isclose(1.0 - p.data[0], 0.01, rtol=1e-5)

    def test_handles_sparse_gradient_scales(self):
        """Per-parameter scaling: huge and tiny gradients both make progress."""
        p = Parameter(np.array([1.0, 1.0]))
        opt = Adam([p], lr=0.01)
        for _ in range(100):
            p.zero_grad()
            p.grad[...] = [1e6 * p.data[0], 1e-6 * np.sign(p.data[1])]
            opt.step()
        assert abs(p.data[0]) < 0.5
        assert abs(p.data[1]) < 0.5

    def test_rejects_bad_betas(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            Adam([p], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([p], beta2=-0.1)

    def test_zero_grad_helper(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p])
        p.grad += 4.0
        opt.zero_grad()
        assert np.all(p.grad == 0)
