"""Optimizers: convergence on known problems, state handling, validation,
and fused flat-buffer vs per-parameter reference equivalence."""

import numpy as np
import pytest

from repro.nn import SGD, Adam, reference_optimizers
from repro.nn.layers import Parameter


def quadratic_step(param, target):
    """Gradient of 0.5 * ||w - target||^2."""
    param.grad[...] = param.data - target


def make_pair(dtype, cls, **kwargs):
    """Two identical parameter sets with a fused and a reference optimizer."""
    rng = np.random.default_rng(0)
    shapes = [(4, 3), (7,), (2, 3, 2)]
    datas = [rng.standard_normal(s).astype(dtype) for s in shapes]
    fused_params = [Parameter(d.copy(), f"p{i}") for i, d in enumerate(datas)]
    ref_params = [Parameter(d.copy(), f"p{i}") for i, d in enumerate(datas)]
    return (fused_params, cls(fused_params, fused=True, **kwargs),
            ref_params, cls(ref_params, fused=False, **kwargs))


def drive(params, opt, steps, dtype, seed=3):
    """Run ``steps`` updates with a deterministic synthetic gradient stream."""
    rng = np.random.default_rng(seed)
    for _ in range(steps):
        opt.zero_grad()
        for p in params:
            p.grad += rng.standard_normal(p.shape).astype(dtype) * 10
        opt.step()


class TestSGD:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([10.0, -10.0]))
        target = np.array([3.0, -1.0])
        opt = SGD([p], lr=0.1)
        for _ in range(200):
            p.zero_grad()
            quadratic_step(p, target)
            opt.step()
        assert np.allclose(p.data, target, atol=1e-6)

    def test_momentum_accelerates(self):
        def run(momentum):
            p = Parameter(np.array([10.0]))
            opt = SGD([p], lr=0.01, momentum=momentum)
            for _ in range(50):
                p.zero_grad()
                quadratic_step(p, np.zeros(1))
                opt.step()
            return abs(float(p.data[0]))

        assert run(0.9) < run(0.0)

    def test_rejects_bad_params(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            SGD([p], lr=0.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.0)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -7.0]))
        target = np.array([1.0, 2.0])
        opt = Adam([p], lr=0.05)
        for _ in range(2000):
            p.zero_grad()
            quadratic_step(p, target)
            opt.step()
        # Adam oscillates near the optimum; tolerance reflects that.
        assert np.allclose(p.data, target, atol=1e-2)

    def test_first_step_magnitude_is_lr(self):
        """With bias correction, the first Adam step has magnitude ~lr."""
        p = Parameter(np.array([1.0]))
        opt = Adam([p], lr=0.01)
        p.grad[...] = 123.0  # any positive gradient
        opt.step()
        assert np.isclose(1.0 - p.data[0], 0.01, rtol=1e-5)

    def test_handles_sparse_gradient_scales(self):
        """Per-parameter scaling: huge and tiny gradients both make progress."""
        p = Parameter(np.array([1.0, 1.0]))
        opt = Adam([p], lr=0.01)
        for _ in range(100):
            p.zero_grad()
            p.grad[...] = [1e6 * p.data[0], 1e-6 * np.sign(p.data[1])]
            opt.step()
        assert abs(p.data[0]) < 0.5
        assert abs(p.data[1]) < 0.5

    def test_rejects_bad_betas(self):
        p = Parameter(np.zeros(1))
        with pytest.raises(ValueError):
            Adam([p], beta1=1.0)
        with pytest.raises(ValueError):
            Adam([p], beta2=-0.1)

    def test_zero_grad_helper(self):
        p = Parameter(np.zeros(3))
        opt = Adam([p])
        p.grad += 4.0
        opt.zero_grad()
        assert np.all(p.grad == 0)


class TestFusedEquivalence:
    """Flat-buffer updates vs the per-parameter reference oracle."""

    def test_adam_bit_identical_float64(self):
        fp, fo, rp, ro = make_pair(np.float64, Adam, lr=1e-3)
        drive(fp, fo, 7, np.float64)
        drive(rp, ro, 7, np.float64)
        for a, b in zip(fp, rp):
            assert np.array_equal(a.data, b.data)

    def test_adam_matches_float32(self):
        fp, fo, rp, ro = make_pair(np.float32, Adam, lr=1e-3)
        drive(fp, fo, 7, np.float32)
        drive(rp, ro, 7, np.float32)
        for a, b in zip(fp, rp):
            assert a.data.dtype == np.float32
            np.testing.assert_allclose(a.data, b.data, atol=1e-5)

    def test_sgd_momentum_bit_identical_float64(self):
        fp, fo, rp, ro = make_pair(np.float64, SGD, lr=0.01, momentum=0.9)
        drive(fp, fo, 7, np.float64)
        drive(rp, ro, 7, np.float64)
        for a, b in zip(fp, rp):
            assert np.array_equal(a.data, b.data)

    def test_sgd_momentum_matches_float32(self):
        fp, fo, rp, ro = make_pair(np.float32, SGD, lr=0.01, momentum=0.9)
        drive(fp, fo, 7, np.float32)
        drive(rp, ro, 7, np.float32)
        for a, b in zip(fp, rp):
            np.testing.assert_allclose(a.data, b.data, atol=1e-5)

    def test_sgd_plain_bit_identical(self):
        fp, fo, rp, ro = make_pair(np.float64, SGD, lr=0.05)
        drive(fp, fo, 3, np.float64)
        drive(rp, ro, 3, np.float64)
        for a, b in zip(fp, rp):
            assert np.array_equal(a.data, b.data)

    def test_mixed_dtype_parameter_list(self):
        """Per-dtype grouping keeps a mixed list correct."""
        datas = [np.ones(4, dtype=np.float32), np.full(3, 2.0)]
        fused = [Parameter(d.copy()) for d in datas]
        ref = [Parameter(d.copy()) for d in datas]
        fo = Adam(fused, lr=0.01, fused=True)
        ro = Adam(ref, lr=0.01, fused=False)
        for params, opt in ((fused, fo), (ref, ro)):
            for p in params:
                p.grad += 1.0
            opt.step()
        for a, b in zip(fused, ref):
            assert a.data.dtype == b.data.dtype
            np.testing.assert_allclose(a.data, b.data, atol=1e-6)

    def test_reference_context_disables_fusion(self):
        with reference_optimizers():
            opt = Adam([Parameter(np.zeros(2))])
        assert opt.fused is False
        opt = Adam([Parameter(np.zeros(2))])
        assert opt.fused is True


class TestStateSurvival:
    """Optimizer state must survive zero_grad(); only gradients reset."""

    def test_adam_moments_survive_zero_grad(self):
        p = Parameter(np.array([1.0, -2.0]))
        opt = Adam([p], lr=0.01, fused=True)
        p.grad += 3.0
        opt.step()
        m_before = [m.copy() for m in opt._m]
        v_before = [v.copy() for v in opt._v]
        opt.zero_grad()
        assert np.all(p.grad == 0.0)
        for m, mb in zip(opt._m, m_before):
            assert np.array_equal(m, mb)
        for v, vb in zip(opt._v, v_before):
            assert np.array_equal(v, vb)
        assert opt._t == 1

    def test_trajectory_with_interleaved_zero_grad_matches_reference(self):
        """zero_grad between steps must not perturb the fused trajectory."""
        fp, fo, rp, ro = make_pair(np.float64, Adam, lr=1e-3)
        for step in range(5):
            for params, opt in ((fp, fo), (rp, ro)):
                opt.zero_grad()
                opt.zero_grad()  # double zero must be harmless
                g_rng = np.random.default_rng(step)
                for p in params:
                    p.grad += g_rng.standard_normal(p.shape)
                opt.step()
        for a, b in zip(fp, rp):
            assert np.array_equal(a.data, b.data)

    def test_sgd_velocity_survives_zero_grad(self):
        p = Parameter(np.array([5.0]))
        opt = SGD([p], lr=0.1, momentum=0.9, fused=True)
        p.grad += 1.0
        opt.step()
        vel = [v.copy() for v in opt._velocity]
        opt.zero_grad()
        for v, vb in zip(opt._velocity, vel):
            assert np.array_equal(v, vb)


class TestRebinding:
    """Constructing optimizers must not permanently claim the parameters."""

    def test_failed_construction_leaves_params_reusable(self):
        p = Parameter(np.array([1.0, -2.0]))
        with pytest.raises(ValueError):
            Adam([p], beta1=1.5, fused=True)
        with pytest.raises(ValueError):
            SGD([p], momentum=-0.1, fused=True)
        # The rejected constructors must not have bound p to a buffer that
        # a corrected retry then trips over.
        opt = Adam([p], beta1=0.5, fused=True)
        p.grad += 3.0
        opt.step()

    def test_second_optimizer_over_same_params_reuses_buffer(self):
        p = Parameter(np.array([1.0, -2.0]))
        first = Adam([p], fused=True)
        second = Adam([p], fused=True)
        assert second._flat is first._flat
        p.grad += 1.0
        second.step()

    def test_optimizer_reuses_explicitly_flattened_buffer(self):
        from repro.nn.flatbuf import FlatParameterBuffer

        p = Parameter(np.array([4.0]))
        buf = FlatParameterBuffer([p])
        opt = Adam([p], fused=True)
        assert opt._flat is buf
