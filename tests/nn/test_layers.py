"""Dense, Flatten, Reshape and the Parameter/Layer protocol."""

import numpy as np
import pytest

from repro.nn import Dense, Flatten, Parameter, Reshape

from tests.nn.gradcheck import check_input_grad, check_param_grads


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 5.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)

    def test_shape_and_repr(self):
        p = Parameter(np.zeros((3, 4)), name="w")
        assert p.shape == (3, 4)
        assert "w" in repr(p)


class TestDense:
    def test_forward_matches_matmul(self, rng):
        layer = Dense(5, 3, rng=0)
        x = rng.standard_normal((4, 5))
        out = layer.forward(x)
        expected = x @ layer.weight.data + layer.bias.data
        assert np.allclose(out, expected)

    def test_input_gradient(self, rng):
        layer = Dense(6, 4, rng=1)
        check_input_grad(layer, rng.standard_normal((3, 6)))

    def test_parameter_gradients(self, rng):
        layer = Dense(4, 3, rng=2)
        check_param_grads(layer, rng.standard_normal((5, 4)))

    def test_no_bias(self, rng):
        layer = Dense(3, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1
        check_param_grads(layer, rng.standard_normal((4, 3)))

    def test_rejects_non_2d_input(self):
        layer = Dense(3, 2, rng=0)
        with pytest.raises(ValueError, match="2-D"):
            layer.forward(np.zeros((2, 3, 1)))

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            Dense(0, 3)
        with pytest.raises(ValueError):
            Dense(3, -1)

    def test_unknown_init_rejected(self):
        with pytest.raises(ValueError, match="unknown init"):
            Dense(3, 2, init="magic")

    def test_gradients_accumulate_across_backwards(self, rng):
        layer = Dense(3, 2, rng=0)
        x = rng.standard_normal((2, 3))
        layer.forward(x)
        g = np.ones((2, 2))
        layer.backward(g)
        first = layer.weight.grad.copy()
        layer.backward(g)
        assert np.allclose(layer.weight.grad, 2 * first)

    def test_backward_before_forward_raises(self):
        layer = Dense(3, 2, rng=0)
        with pytest.raises(RuntimeError):
            layer.backward(np.ones((1, 2)))


class TestShapes:
    def test_flatten_round_trip(self, rng):
        layer = Flatten()
        x = rng.standard_normal((2, 3, 4, 4))
        out = layer.forward(x)
        assert out.shape == (2, 48)
        assert np.allclose(layer.backward(out), x)

    def test_reshape_round_trip(self, rng):
        layer = Reshape((2, 4, 4))
        x = rng.standard_normal((3, 32))
        out = layer.forward(x)
        assert out.shape == (3, 2, 4, 4)
        back = layer.backward(out)
        assert np.allclose(back, x)

    def test_flatten_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Flatten().backward(np.ones((1, 4)))

    def test_no_parameters(self):
        assert Flatten().parameters() == []
        assert Reshape((4,)).parameters() == []
