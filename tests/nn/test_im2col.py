"""im2col/col2im: geometry, round trips, and the adjoint property."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.im2col import col2im, conv_output_size, im2col


class TestConvOutputSize:
    def test_dcgan_geometry_halves(self):
        assert conv_output_size(16, 4, 1, 2) == 8
        assert conv_output_size(8, 4, 1, 2) == 4
        assert conv_output_size(4, 4, 1, 2) == 2

    def test_unit_stride(self):
        assert conv_output_size(5, 3, 1, 1) == 5

    def test_rejects_inexact_geometry(self):
        with pytest.raises(ValueError, match="not exact"):
            conv_output_size(5, 4, 1, 2)

    def test_rejects_oversized_kernel(self):
        with pytest.raises(ValueError, match="larger than"):
            conv_output_size(2, 8, 0, 1)


class TestIm2col:
    def test_shape(self):
        # Batch-major patch matrix: (N * positions, C * kernel * kernel).
        x = np.arange(2 * 3 * 8 * 8, dtype=float).reshape(2, 3, 8, 8)
        cols = im2col(x, kernel=4, padding=1, stride=2)
        assert cols.shape == (2 * 4 * 4, 3 * 16)

    def test_identity_kernel_1x1(self):
        x = np.random.default_rng(0).standard_normal((2, 2, 4, 4))
        cols = im2col(x, kernel=1, padding=0, stride=1)
        # 1x1 kernel at stride 1 just flattens the spatial grid.
        assert cols.shape == (32, 2)
        assert np.allclose(np.sort(cols.ravel()), np.sort(x.ravel()))

    def test_known_patch_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        cols = im2col(x, kernel=2, padding=0, stride=2)
        # First patch row = top-left 2x2 patch [0, 1, 4, 5].
        assert np.allclose(cols[0], [0, 1, 4, 5])

    def test_padding_adds_zero_border(self):
        x = np.ones((1, 1, 2, 2))
        cols = im2col(x, kernel=2, padding=1, stride=2)
        # Every corner patch touches the zero border.
        assert cols.min() == 0.0
        assert cols.max() == 1.0


class TestCol2im:
    def test_round_trip_non_overlapping(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((2, 3, 4, 4))
        cols = im2col(x, kernel=2, padding=0, stride=2)
        back = col2im(cols, x.shape, kernel=2, padding=0, stride=2)
        # Non-overlapping windows: col2im exactly inverts im2col.
        assert np.allclose(back, x)

    def test_overlap_accumulates(self):
        x = np.ones((1, 1, 3, 3))
        cols = im2col(x, kernel=3, padding=1, stride=1)
        back = col2im(cols, x.shape, kernel=3, padding=1, stride=1)
        # Center cell is visited by all 9 windows.
        assert back[0, 0, 1, 1] == 9.0

    @settings(max_examples=25, deadline=None)
    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 3),
        seed=st.integers(0, 10_000),
    )
    def test_adjoint_property(self, batch, channels, seed):
        """<im2col(x), y> == <x, col2im(y)> for all x, y (exact adjoints).

        This is the property that makes col2im the correct backward pass of
        convolution and the correct forward pass of deconvolution.
        """
        rng = np.random.default_rng(seed)
        shape = (batch, channels, 8, 8)
        x = rng.standard_normal(shape)
        cols = im2col(x, kernel=4, padding=1, stride=2)
        y = rng.standard_normal(cols.shape)
        lhs = float(np.sum(cols * y))
        rhs = float(np.sum(x * col2im(y, shape, kernel=4, padding=1, stride=2)))
        assert np.isclose(lhs, rhs)
