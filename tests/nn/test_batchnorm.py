"""BatchNorm: normalization semantics, running statistics, gradients,
and fused-kernel vs reference-oracle equivalence."""

import numpy as np
import pytest

from repro.nn import BatchNorm
from repro.nn.batchnorm import reference_batchnorm

from tests.nn.gradcheck import check_input_grad, check_param_grads


class TestForward:
    def test_normalizes_2d_batch(self, rng):
        bn = BatchNorm(5)
        x = rng.standard_normal((64, 5)) * 3.0 + 7.0
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_normalizes_4d_per_channel(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 2.0 - 5.0
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_gamma_beta_shift(self, rng):
        bn = BatchNorm(2)
        bn.gamma.data[...] = 2.0
        bn.beta.data[...] = 1.0
        out = bn.forward(rng.standard_normal((32, 2)), training=True)
        assert np.allclose(out.mean(axis=0), 1.0, atol=1e-10)

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm(4, momentum=0.0)  # running stats = last batch exactly
        x = rng.standard_normal((128, 4)) * 2.0 + 3.0
        bn.forward(x, training=True)
        single = x[:1]
        out = bn.forward(single, training=False)
        expected = (single - x.mean(axis=0)) / np.sqrt(x.var(axis=0) + bn.eps)
        assert np.allclose(out, expected, atol=1e-8)

    def test_rejects_wrong_width(self, rng):
        bn = BatchNorm(4)
        with pytest.raises(ValueError, match="expected 4"):
            bn.forward(rng.standard_normal((8, 5)))

    def test_rejects_5d_input(self, rng):
        with pytest.raises(ValueError, match="2-D, 3-D or 4-D"):
            BatchNorm(4).forward(rng.standard_normal((2, 4, 3, 3, 3)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(4, momentum=1.0)


class TestGradients:
    def test_input_gradient_2d_training(self, rng):
        check_input_grad(BatchNorm(4), rng.standard_normal((8, 4)), atol=1e-6)

    def test_input_gradient_4d_training(self, rng):
        check_input_grad(BatchNorm(2), rng.standard_normal((4, 2, 3, 3)), atol=1e-6)

    def test_param_gradients(self, rng):
        check_param_grads(BatchNorm(3), rng.standard_normal((6, 3)), atol=1e-6)

    def test_eval_mode_gradient_is_scale(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((16, 3))
        bn.forward(x, training=True)  # populate running stats
        check_input_grad(bn, rng.standard_normal((4, 3)), training=False, atol=1e-6)


def _run_pair(shape, dtype, training=True, accumulate=False, seed=0):
    """Forward+backward one batch through a fused and a reference layer.

    Returns ``(fused, reference)`` dicts of outputs, input gradients,
    parameter gradients, and running statistics.
    """
    rng = np.random.default_rng(seed)
    features = shape[1]
    x = (rng.standard_normal(shape) * 3 + 5).astype(dtype)
    grad = rng.standard_normal(shape).astype(dtype)
    results = []
    for use_reference in (False, True):
        bn = BatchNorm(features, dtype=dtype)
        bn.gamma.data[...] = rng_gamma = np.linspace(0.5, 2.0, features)
        bn.beta.data[...] = np.linspace(-1.0, 1.0, features)
        if not training:
            # Populate running stats with a training batch first.
            warm = (np.random.default_rng(9).standard_normal(shape) * 2).astype(dtype)
            if use_reference:
                with reference_batchnorm():
                    bn.forward(warm, training=True)
            else:
                bn.forward(warm, training=True)
            bn.zero_grad()

        def run():
            out = bn.forward(x, training=training)
            dx = bn.backward(grad)
            if accumulate:  # second backward through the same forward cache
                dx = dx + bn.backward(grad)
            return out, dx

        if use_reference:
            with reference_batchnorm():
                out, dx = run()
        else:
            out, dx = run()
        results.append({
            "out": out,
            "dx": dx,
            "dgamma": bn.gamma.grad.copy(),
            "dbeta": bn.beta.grad.copy(),
            "running_mean": bn.running_mean.copy(),
            "running_var": bn.running_var.copy(),
        })
    return results


SHAPES = [(16, 5), (8, 4, 6), (6, 3, 5, 5)]


class TestFusedVsReference:
    """The nn/plan.py convention: bit-for-bit in float64, 1e-5 in float32."""

    @pytest.mark.parametrize("shape", SHAPES)
    def test_float64_bit_identical_training(self, shape):
        fused, ref = _run_pair(shape, np.float64, training=True)
        for key in fused:
            assert np.array_equal(fused[key], ref[key]), key

    @pytest.mark.parametrize("shape", SHAPES)
    def test_float64_bit_identical_eval(self, shape):
        fused, ref = _run_pair(shape, np.float64, training=False)
        for key in fused:
            assert np.array_equal(fused[key], ref[key]), key

    @pytest.mark.parametrize("shape", SHAPES)
    def test_float32_close_training(self, shape):
        fused, ref = _run_pair(shape, np.float32, training=True)
        for key in fused:
            np.testing.assert_allclose(fused[key], ref[key], atol=1e-5,
                                       err_msg=key)

    @pytest.mark.parametrize("shape", SHAPES)
    def test_float32_close_eval(self, shape):
        fused, ref = _run_pair(shape, np.float32, training=False)
        for key in fused:
            np.testing.assert_allclose(fused[key], ref[key], atol=1e-5,
                                       err_msg=key)

    def test_double_backward_through_one_forward(self):
        """Backward must not mutate the cache (the table-GAN generator
        update back-propagates through the discriminator twice)."""
        fused, ref = _run_pair((6, 3, 5, 5), np.float64, accumulate=True)
        assert np.array_equal(fused["dx"], ref["dx"])
        assert np.array_equal(fused["dgamma"], ref["dgamma"])

    def test_float32_output_dtype_preserved(self, rng):
        bn = BatchNorm(4, dtype=np.float32)
        x = rng.standard_normal((8, 4)).astype(np.float32)
        out = bn.forward(x, training=True)
        dx = bn.backward(np.ones_like(out))
        assert out.dtype == np.float32
        assert dx.dtype == np.float32

    def test_single_pass_variance_clamped_nonnegative(self):
        """E[x²]−mean² cancellation must never produce negative variance."""
        bn = BatchNorm(2, dtype=np.float32)
        # Large mean, tiny spread: worst case for the single-pass formula.
        x = np.full((64, 2), 100.0, dtype=np.float32)
        x[::2] += 1e-3
        out = bn.forward(x, training=True)
        assert np.all(np.isfinite(out))
        assert np.all(bn.running_var >= 0.0)


class TestRunningStats:
    def test_ewma_update(self, rng):
        bn = BatchNorm(2, momentum=0.9)
        x = rng.standard_normal((100, 2)) + 4.0
        bn.forward(x, training=True)
        expected_mean = 0.9 * 0.0 + 0.1 * x.mean(axis=0)
        assert np.allclose(bn.running_mean, expected_mean)

    def test_eval_does_not_update(self, rng):
        bn = BatchNorm(2)
        bn.forward(rng.standard_normal((10, 2)), training=True)
        before = bn.running_mean.copy()
        bn.forward(rng.standard_normal((10, 2)) + 100.0, training=False)
        assert np.allclose(bn.running_mean, before)
