"""BatchNorm: normalization semantics, running statistics, gradients."""

import numpy as np
import pytest

from repro.nn import BatchNorm

from tests.nn.gradcheck import check_input_grad, check_param_grads


class TestForward:
    def test_normalizes_2d_batch(self, rng):
        bn = BatchNorm(5)
        x = rng.standard_normal((64, 5)) * 3.0 + 7.0
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-3)

    def test_normalizes_4d_per_channel(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 2.0 - 5.0
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)

    def test_gamma_beta_shift(self, rng):
        bn = BatchNorm(2)
        bn.gamma.data[...] = 2.0
        bn.beta.data[...] = 1.0
        out = bn.forward(rng.standard_normal((32, 2)), training=True)
        assert np.allclose(out.mean(axis=0), 1.0, atol=1e-10)

    def test_eval_mode_uses_running_stats(self, rng):
        bn = BatchNorm(4, momentum=0.0)  # running stats = last batch exactly
        x = rng.standard_normal((128, 4)) * 2.0 + 3.0
        bn.forward(x, training=True)
        single = x[:1]
        out = bn.forward(single, training=False)
        expected = (single - x.mean(axis=0)) / np.sqrt(x.var(axis=0) + bn.eps)
        assert np.allclose(out, expected, atol=1e-8)

    def test_rejects_wrong_width(self, rng):
        bn = BatchNorm(4)
        with pytest.raises(ValueError, match="expected 4"):
            bn.forward(rng.standard_normal((8, 5)))

    def test_rejects_5d_input(self, rng):
        with pytest.raises(ValueError, match="2-D, 3-D or 4-D"):
            BatchNorm(4).forward(rng.standard_normal((2, 4, 3, 3, 3)))

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            BatchNorm(0)
        with pytest.raises(ValueError):
            BatchNorm(4, momentum=1.0)


class TestGradients:
    def test_input_gradient_2d_training(self, rng):
        check_input_grad(BatchNorm(4), rng.standard_normal((8, 4)), atol=1e-6)

    def test_input_gradient_4d_training(self, rng):
        check_input_grad(BatchNorm(2), rng.standard_normal((4, 2, 3, 3)), atol=1e-6)

    def test_param_gradients(self, rng):
        check_param_grads(BatchNorm(3), rng.standard_normal((6, 3)), atol=1e-6)

    def test_eval_mode_gradient_is_scale(self, rng):
        bn = BatchNorm(3)
        x = rng.standard_normal((16, 3))
        bn.forward(x, training=True)  # populate running stats
        check_input_grad(bn, rng.standard_normal((4, 3)), training=False, atol=1e-6)


class TestRunningStats:
    def test_ewma_update(self, rng):
        bn = BatchNorm(2, momentum=0.9)
        x = rng.standard_normal((100, 2)) + 4.0
        bn.forward(x, training=True)
        expected_mean = 0.9 * 0.0 + 0.1 * x.mean(axis=0)
        assert np.allclose(bn.running_mean, expected_mean)

    def test_eval_does_not_update(self, rng):
        bn = BatchNorm(2)
        bn.forward(rng.standard_normal((10, 2)), training=True)
        before = bn.running_mean.copy()
        bn.forward(rng.standard_normal((10, 2)) + 100.0, training=False)
        assert np.allclose(bn.running_mean, before)
