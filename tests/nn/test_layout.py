"""The batch-major column-layout contract at the layer level (ISSUE 4).

Three properties the refactor exists for, asserted directly:

* the hot matricizations are **views** — ``Conv2D.backward`` feeds the
  weight GEMM ``grad.reshape(N, C_out, P)`` and
  ``ConvTranspose2D.forward`` projects ``x.reshape(N, C_in, P)``, both
  sharing memory with the layer's NCHW tensors (``np.shares_memory``);
* conv outputs are **contiguous**, so ``Flatten`` at the discriminator's
  feature layer returns a view of the conv activation;
* the layers are **blocking-invariant and mode-consistent**: fast ==
  retained reference path to float64 rounding (the gather/scatter
  primitives themselves are bit-exact, see ``test_plan.py``; layer GEMMs
  contract in a different operand orientation) / 1e-5 in float32, for
  every batch block size, and inference forwards stream without caching
  a patch matrix.
"""

import numpy as np
import pytest

from repro.core.networks import FEATURE_LAYER, build_discriminator
from repro.nn import (
    Conv1D,
    Conv2D,
    ConvTranspose1D,
    ConvTranspose2D,
    reference_ops,
    set_workspace_budget,
)


@pytest.fixture(params=[1, None], ids=["block1", "default"])
def block_budget(request):
    previous = set_workspace_budget(request.param)
    yield request.param
    set_workspace_budget(previous)


class TestMatricizationsAreViews:
    def test_conv2d_weight_grad_matricization_shares_memory(self):
        rng = np.random.default_rng(0)
        conv = Conv2D(3, 4, kernel=4, stride=2, padding=1, rng=0, dtype=np.float32)
        x = rng.standard_normal((5, 3, 8, 8)).astype(np.float32)
        conv.forward(x)
        grad = rng.standard_normal((5, 4, 4, 4)).astype(np.float32)
        conv.backward(grad)
        assert conv._grad_mat is not None
        assert conv._grad_mat.shape == (5, 4, 16)
        assert np.shares_memory(conv._grad_mat, grad)

    def test_conv1d_weight_grad_matricization_shares_memory(self):
        rng = np.random.default_rng(1)
        conv = Conv1D(2, 3, kernel=4, stride=2, padding=1, rng=0)
        x = rng.standard_normal((4, 2, 8))
        conv.forward(x)
        grad = rng.standard_normal((4, 3, 4))
        conv.backward(grad)
        assert np.shares_memory(conv._grad_mat, grad)

    def test_deconv2d_input_matricization_shares_memory(self):
        rng = np.random.default_rng(2)
        deconv = ConvTranspose2D(3, 2, kernel=4, stride=2, padding=1, rng=0)
        x = rng.standard_normal((5, 3, 4, 4))
        deconv.forward(x)
        assert deconv._x_mat is not None
        assert deconv._x_mat.shape == (5, 3, 16)
        assert np.shares_memory(deconv._x_mat, x)

    def test_deconv1d_input_matricization_shares_memory(self):
        rng = np.random.default_rng(3)
        deconv = ConvTranspose1D(2, 1, kernel=4, stride=2, padding=1, rng=0)
        x = rng.standard_normal((3, 2, 4))
        deconv.forward(x)
        assert np.shares_memory(deconv._x_mat, x)


class TestContiguousOutputs:
    @pytest.mark.parametrize("training", [True, False])
    def test_conv2d_output_is_contiguous(self, training, block_budget):
        rng = np.random.default_rng(4)
        conv = Conv2D(2, 3, kernel=4, stride=2, padding=1, rng=0)
        out = conv.forward(rng.standard_normal((5, 2, 8, 8)), training=training)
        assert out.flags["C_CONTIGUOUS"]

    @pytest.mark.parametrize("training", [True, False])
    def test_deconv2d_output_is_contiguous(self, training, block_budget):
        rng = np.random.default_rng(5)
        deconv = ConvTranspose2D(2, 3, kernel=4, stride=2, padding=1, rng=0)
        out = deconv.forward(rng.standard_normal((5, 2, 4, 4)), training=training)
        assert out.flags["C_CONTIGUOUS"]

    def test_flatten_is_a_view_at_the_feature_layer(self):
        """The discriminator's Dense/Flatten boundary keeps zero-copy."""
        disc = build_discriminator(8, 4, rng=0, dtype=np.float32)
        x = np.random.default_rng(6).standard_normal((3, 1, 8, 8)).astype(np.float32)
        disc.forward(x)
        flatten_index = next(
            i for i, name in enumerate(disc.names) if name == FEATURE_LAYER
        )
        conv_activation = disc.activation(flatten_index - 1)
        features = disc.activation(FEATURE_LAYER)
        assert conv_activation.flags["C_CONTIGUOUS"]
        assert np.shares_memory(features, conv_activation)


class TestLayerEquivalence:
    """Fast layers == retained seed layer paths, for every blocking."""

    GEOMS_2D = [((5, 2, 8, 8), dict(kernel=4, stride=2, padding=1)),
                ((3, 1, 5, 5), dict(kernel=3, stride=1, padding=1)),
                ((4, 2, 4, 4), dict(kernel=2, stride=2, padding=0))]

    @pytest.mark.parametrize("shape,geom", GEOMS_2D)
    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_conv2d_matches_reference_path(self, shape, geom, dtype,
                                           block_budget):
        rng = np.random.default_rng(7)
        x = rng.standard_normal(shape).astype(dtype)
        conv = Conv2D(shape[1], 3, rng=1, dtype=dtype, **geom)
        out_fast = conv.forward(x)
        grad = rng.standard_normal(out_fast.shape).astype(dtype)
        dx_fast = conv.backward(grad)
        wg_fast = conv.weight.grad.copy()
        conv.zero_grad()
        with reference_ops():
            out_ref = conv.forward(x)
            dx_ref = conv.backward(grad)
        wg_ref = conv.weight.grad.copy()
        # The gather/scatter primitives are bit-identical to the oracle
        # (tests/nn/test_plan.py); at the layer level the GEMM operand
        # orientation differs by design, so float64 agrees to rounding
        # (1e-12), float32 to the engine contract tolerances.
        if dtype is np.float64:
            assert np.allclose(out_fast, out_ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(dx_fast, dx_ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(wg_fast, wg_ref, rtol=1e-12, atol=1e-12)
        else:
            assert np.allclose(out_fast, out_ref, atol=1e-5)
            assert np.allclose(dx_fast, dx_ref, atol=1e-4)
            assert np.allclose(wg_fast, wg_ref, atol=1e-3)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_deconv2d_matches_reference_path(self, dtype, block_budget):
        rng = np.random.default_rng(8)
        x = rng.standard_normal((5, 3, 4, 4)).astype(dtype)
        deconv = ConvTranspose2D(3, 2, kernel=4, stride=2, padding=1, rng=1,
                                 dtype=dtype)
        out_fast = deconv.forward(x)
        grad = rng.standard_normal(out_fast.shape).astype(dtype)
        dx_fast = deconv.backward(grad)
        wg_fast = deconv.weight.grad.copy()
        deconv.zero_grad()
        with reference_ops():
            out_ref = deconv.forward(x)
            dx_ref = deconv.backward(grad)
        wg_ref = deconv.weight.grad.copy()
        # The gather/scatter primitives are bit-identical to the oracle
        # (tests/nn/test_plan.py); at the layer level the GEMM operand
        # orientation differs by design, so float64 agrees to rounding
        # (1e-12), float32 to the engine contract tolerances.
        if dtype is np.float64:
            assert np.allclose(out_fast, out_ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(dx_fast, dx_ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(wg_fast, wg_ref, rtol=1e-12, atol=1e-12)
        else:
            assert np.allclose(out_fast, out_ref, atol=1e-5)
            assert np.allclose(dx_fast, dx_ref, atol=1e-4)
            assert np.allclose(wg_fast, wg_ref, atol=1e-3)

    @pytest.mark.parametrize("dtype", [np.float64, np.float32])
    def test_conv1d_pair_matches_reference_path(self, dtype, block_budget):
        rng = np.random.default_rng(9)
        x = rng.standard_normal((5, 2, 8)).astype(dtype)
        conv = Conv1D(2, 3, kernel=4, stride=2, padding=1, rng=1, dtype=dtype)
        out_fast = conv.forward(x)
        grad = rng.standard_normal(out_fast.shape).astype(dtype)
        dx_fast = conv.backward(grad)
        conv.zero_grad()
        with reference_ops():
            out_ref = conv.forward(x)
            dx_ref = conv.backward(grad)
        deconv = ConvTranspose1D(2, 1, kernel=4, stride=2, padding=1, rng=1,
                                 dtype=dtype)
        up_fast = deconv.forward(x)
        with reference_ops():
            up_ref = deconv.forward(x)
        if dtype is np.float64:
            assert np.allclose(out_fast, out_ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(dx_fast, dx_ref, rtol=1e-12, atol=1e-12)
            assert np.allclose(up_fast, up_ref, rtol=1e-12, atol=1e-12)
        else:
            assert np.allclose(out_fast, out_ref, atol=1e-5)
            assert np.allclose(dx_fast, dx_ref, atol=1e-4)
            assert np.allclose(up_fast, up_ref, atol=1e-4)


class TestStreamForward:
    def test_matches_monolithic_inference(self):
        disc = build_discriminator(8, 4, rng=0, dtype=np.float32)
        x = np.random.default_rng(13).standard_normal((700, 1, 8, 8)).astype(np.float32)
        plain = disc.forward(x, training=False)
        streamed = disc.stream_forward(x)
        assert np.allclose(streamed, plain, atol=1e-6)

    def test_chunk_size_never_changes_output(self):
        disc = build_discriminator(8, 4, rng=0, dtype=np.float32)
        x = np.random.default_rng(14).standard_normal((130, 1, 8, 8)).astype(np.float32)
        base = disc.stream_forward(x, chunk_rows=130)
        # A fixed chunking is deterministic (bit-identical re-runs);
        # different chunk sizes change BLAS GEMM shapes, which may differ
        # in the last bit — the same sensitivity any choice of forward
        # batch size always had — so across chunk sizes the contract is
        # tolerance-level agreement.
        for chunk in (1, 64, 100, 1000):
            run = disc.stream_forward(x, chunk_rows=chunk)
            assert np.array_equal(run, disc.stream_forward(x, chunk_rows=chunk))
            assert np.allclose(run, base, atol=1e-6)

    def test_rejects_bad_chunk(self):
        disc = build_discriminator(8, 4, rng=0, dtype=np.float32)
        with pytest.raises(ValueError, match="positive"):
            disc.stream_forward(np.zeros((2, 1, 8, 8), np.float32), chunk_rows=0)


class TestStreamingInference:
    def test_inference_forward_caches_no_patch_matrix(self):
        rng = np.random.default_rng(10)
        conv = Conv2D(2, 3, kernel=4, stride=2, padding=1, rng=0)
        x = rng.standard_normal((4, 2, 8, 8))
        out_train = conv.forward(x, training=True)
        assert conv._cols is not None
        out_infer = conv.forward(x, training=False)
        assert conv._cols is None
        assert np.array_equal(out_train, out_infer)

    def test_backward_after_inference_forward_raises(self):
        rng = np.random.default_rng(11)
        conv = Conv2D(1, 2, kernel=4, stride=2, padding=1, rng=0)
        conv.forward(rng.standard_normal((2, 1, 8, 8)), training=False)
        with pytest.raises(RuntimeError, match="training-mode forward"):
            conv.backward(np.ones((2, 2, 4, 4)))

    def test_large_batch_equals_small_batch_rows(self):
        """Streaming blocks never change numerics: a 4096-row forward is
        row-identical to the same rows pushed through in 256-row chunks."""
        rng = np.random.default_rng(12)
        deconv = ConvTranspose2D(4, 2, kernel=4, stride=2, padding=1, rng=0,
                                 dtype=np.float32)
        x = rng.standard_normal((1024, 4, 4, 4)).astype(np.float32)
        full = deconv.forward(x, training=False)
        chunked = np.concatenate([
            deconv.forward(x[i:i + 256], training=False)
            for i in range(0, 1024, 256)
        ])
        assert np.array_equal(full, chunked)
