"""Weight persistence: round trips and mismatch detection."""

import numpy as np
import pytest

from repro.nn import (
    Dense,
    LeakyReLU,
    Sequential,
    load_npz,
    load_state_dict,
    save_npz,
    state_dict,
)


def make_net(seed=0):
    return Sequential([Dense(4, 3, rng=seed), LeakyReLU(), Dense(3, 1, rng=seed + 1)])


class TestStateDict:
    def test_snapshot_is_a_copy(self):
        net = make_net()
        state = state_dict(net)
        first_key = sorted(state)[0]
        state[first_key][...] = 999.0
        assert not np.any(net.parameters()[0].data == 999.0)

    def test_round_trip_restores_outputs(self, rng):
        source = make_net(seed=0)
        target = make_net(seed=7)
        x = rng.standard_normal((5, 4))
        assert not np.allclose(source.forward(x), target.forward(x))
        load_state_dict(target, state_dict(source))
        assert np.allclose(source.forward(x), target.forward(x))

    def test_count_mismatch_raises(self):
        net = make_net()
        small = Sequential([Dense(4, 3, rng=0)])
        with pytest.raises(ValueError, match="parameters"):
            load_state_dict(small, state_dict(net))

    def test_shape_mismatch_raises(self):
        net = make_net()
        other = Sequential([Dense(4, 2, rng=0), LeakyReLU(), Dense(2, 1, rng=1)])
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(other, state_dict(net))


class TestNpz:
    def test_file_round_trip(self, tmp_path, rng):
        source = make_net(seed=3)
        target = make_net(seed=9)
        path = tmp_path / "weights.npz"
        save_npz(path, source)
        load_npz(path, target)
        x = rng.standard_normal((2, 4))
        assert np.allclose(source.forward(x), target.forward(x))
