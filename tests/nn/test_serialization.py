"""Weight persistence: round trips, mismatch detection, atomic writes."""

import os

import numpy as np
import pytest

from repro.nn import (
    Dense,
    LeakyReLU,
    Sequential,
    atomic_savez,
    load_npz,
    load_state_dict,
    save_npz,
    state_dict,
)


def make_net(seed=0):
    return Sequential([Dense(4, 3, rng=seed), LeakyReLU(), Dense(3, 1, rng=seed + 1)])


class TestStateDict:
    def test_snapshot_is_a_copy(self):
        net = make_net()
        state = state_dict(net)
        first_key = sorted(state)[0]
        state[first_key][...] = 999.0
        assert not np.any(net.parameters()[0].data == 999.0)

    def test_round_trip_restores_outputs(self, rng):
        source = make_net(seed=0)
        target = make_net(seed=7)
        x = rng.standard_normal((5, 4))
        assert not np.allclose(source.forward(x), target.forward(x))
        load_state_dict(target, state_dict(source))
        assert np.allclose(source.forward(x), target.forward(x))

    def test_count_mismatch_raises(self):
        net = make_net()
        small = Sequential([Dense(4, 3, rng=0)])
        with pytest.raises(ValueError, match="parameters"):
            load_state_dict(small, state_dict(net))

    def test_shape_mismatch_raises(self):
        net = make_net()
        other = Sequential([Dense(4, 2, rng=0), LeakyReLU(), Dense(2, 1, rng=1)])
        with pytest.raises(ValueError, match="shape mismatch"):
            load_state_dict(other, state_dict(net))


class TestNpz:
    def test_file_round_trip(self, tmp_path, rng):
        source = make_net(seed=3)
        target = make_net(seed=9)
        path = tmp_path / "weights.npz"
        save_npz(path, source)
        load_npz(path, target)
        x = rng.standard_normal((2, 4))
        assert np.allclose(source.forward(x), target.forward(x))


class TestAtomicSavez:
    def test_appends_npz_suffix_like_numpy(self, tmp_path):
        final = atomic_savez(tmp_path / "weights", a=np.arange(3))
        assert final.endswith("weights.npz")
        with np.load(final) as archive:
            assert np.array_equal(archive["a"], np.arange(3))

    def test_leaves_no_temp_files(self, tmp_path):
        atomic_savez(tmp_path / "weights.npz", a=np.arange(3))
        assert sorted(p.name for p in tmp_path.iterdir()) == ["weights.npz"]

    def test_interrupted_save_preserves_previous_archive(self, tmp_path,
                                                         monkeypatch):
        """A crash mid-write must not clobber or truncate the existing file."""
        path = tmp_path / "weights.npz"
        atomic_savez(path, a=np.arange(3))
        before = path.read_bytes()

        def exploding_savez(handle, **arrays):
            handle.write(b"partial garbage")
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError, match="disk full"):
            atomic_savez(path, a=np.arange(5))
        assert path.read_bytes() == before
        assert sorted(p.name for p in tmp_path.iterdir()) == ["weights.npz"]

    def test_save_npz_is_atomic(self, tmp_path, monkeypatch):
        net = make_net()
        path = tmp_path / "net.npz"

        def exploding_savez(handle, **arrays):
            raise OSError("interrupted")

        monkeypatch.setattr(np, "savez_compressed", exploding_savez)
        with pytest.raises(OSError):
            save_npz(path, net)
        assert not os.path.exists(path)
        assert list(tmp_path.iterdir()) == []
