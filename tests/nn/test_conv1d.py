"""Conv1D / ConvTranspose1D: geometry, gradients, adjointness."""

import numpy as np
import pytest

from repro.nn import Conv1D, ConvTranspose1D
from repro.nn.conv1d import conv1d_output_size

from tests.nn.gradcheck import check_input_grad, check_param_grads


class TestGeometry:
    def test_halving_and_doubling(self, rng):
        conv = Conv1D(1, 4, kernel=4, stride=2, padding=1, rng=0)
        assert conv.forward(rng.standard_normal((2, 1, 16))).shape == (2, 4, 8)
        deconv = ConvTranspose1D(4, 1, kernel=4, stride=2, padding=1, rng=0)
        assert deconv.forward(rng.standard_normal((2, 4, 8))).shape == (2, 1, 16)

    def test_output_size_validation(self):
        assert conv1d_output_size(16, 4, 1, 2) == 8
        with pytest.raises(ValueError, match="not exact"):
            conv1d_output_size(5, 4, 1, 2)

    def test_channel_validation(self, rng):
        with pytest.raises(ValueError, match="expected"):
            Conv1D(3, 2, rng=0).forward(rng.standard_normal((1, 2, 8)))
        with pytest.raises(ValueError, match="expected"):
            ConvTranspose1D(3, 2, rng=0).forward(rng.standard_normal((1, 2, 8)))

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            Conv1D(0, 2)
        with pytest.raises(ValueError):
            ConvTranspose1D(2, 2, padding=-1)


class TestGradients:
    def test_conv1d_input_gradient(self, rng):
        check_input_grad(Conv1D(2, 3, rng=1), rng.standard_normal((2, 2, 8)))

    def test_conv1d_param_gradients(self, rng):
        check_param_grads(Conv1D(2, 2, rng=2), rng.standard_normal((2, 2, 8)))

    def test_deconv1d_input_gradient(self, rng):
        check_input_grad(ConvTranspose1D(3, 2, rng=1), rng.standard_normal((2, 3, 4)))

    def test_deconv1d_param_gradients(self, rng):
        check_param_grads(ConvTranspose1D(2, 2, rng=2), rng.standard_normal((2, 2, 4)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Conv1D(1, 1, rng=0).backward(np.ones((1, 1, 4)))
        with pytest.raises(RuntimeError):
            ConvTranspose1D(1, 1, rng=0).backward(np.ones((1, 1, 8)))


class TestAdjointness:
    def test_deconv1d_is_conv1d_adjoint(self, rng):
        conv = Conv1D(3, 5, kernel=4, stride=2, padding=1, bias=False, rng=0)
        deconv = ConvTranspose1D(5, 3, kernel=4, stride=2, padding=1, bias=False, rng=0)
        deconv.weight.data[...] = conv.weight.data
        x = rng.standard_normal((2, 3, 16))
        y = rng.standard_normal((2, 5, 8))
        lhs = float(np.sum(conv.forward(x) * y))
        rhs = float(np.sum(x * deconv.forward(y)))
        assert np.isclose(lhs, rhs)


class TestBatchNorm3d:
    def test_normalizes_per_channel(self, rng):
        from repro.nn import BatchNorm

        bn = BatchNorm(3)
        x = rng.standard_normal((8, 3, 10)) * 4.0 + 2.0
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 2)), 0.0, atol=1e-10)

    def test_gradient(self, rng):
        from repro.nn import BatchNorm

        check_input_grad(BatchNorm(2), rng.standard_normal((4, 2, 6)), atol=1e-6)
