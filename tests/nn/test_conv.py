"""Conv2D and ConvTranspose2D: shapes, gradients, and mutual adjointness."""

import numpy as np
import pytest

from repro.nn import Conv2D, ConvTranspose2D

from tests.nn.gradcheck import check_input_grad, check_param_grads


class TestConv2DShapes:
    def test_dcgan_halving(self, rng):
        conv = Conv2D(1, 8, kernel=4, stride=2, padding=1, rng=0)
        out = conv.forward(rng.standard_normal((2, 1, 16, 16)))
        assert out.shape == (2, 8, 8, 8)

    def test_output_shape_helper(self):
        conv = Conv2D(1, 4, kernel=4, stride=2, padding=1, rng=0)
        assert conv.output_shape(8, 8) == (4, 4)

    def test_rejects_wrong_channels(self, rng):
        conv = Conv2D(3, 4, rng=0)
        with pytest.raises(ValueError, match="expected"):
            conv.forward(rng.standard_normal((1, 2, 8, 8)))

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            Conv2D(0, 4)
        with pytest.raises(ValueError):
            Conv2D(1, 4, padding=-1)


class TestConv2DGradients:
    def test_input_gradient(self, rng):
        conv = Conv2D(2, 3, kernel=4, stride=2, padding=1, rng=1)
        check_input_grad(conv, rng.standard_normal((2, 2, 8, 8)))

    def test_parameter_gradients(self, rng):
        conv = Conv2D(2, 2, kernel=4, stride=2, padding=1, rng=2)
        check_param_grads(conv, rng.standard_normal((2, 2, 8, 8)))

    def test_unit_stride_gradients(self, rng):
        conv = Conv2D(1, 2, kernel=3, stride=1, padding=1, rng=3)
        check_input_grad(conv, rng.standard_normal((1, 1, 5, 5)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            Conv2D(1, 1, rng=0).backward(np.ones((1, 1, 2, 2)))


class TestConvTranspose2DShapes:
    def test_dcgan_doubling(self, rng):
        deconv = ConvTranspose2D(8, 4, kernel=4, stride=2, padding=1, rng=0)
        out = deconv.forward(rng.standard_normal((2, 8, 4, 4)))
        assert out.shape == (2, 4, 8, 8)

    def test_output_shape_helper(self):
        deconv = ConvTranspose2D(4, 1, kernel=4, stride=2, padding=1, rng=0)
        assert deconv.output_shape(2, 2) == (4, 4)

    def test_rejects_wrong_channels(self, rng):
        deconv = ConvTranspose2D(3, 2, rng=0)
        with pytest.raises(ValueError, match="expected"):
            deconv.forward(rng.standard_normal((1, 2, 4, 4)))


class TestConvTranspose2DGradients:
    def test_input_gradient(self, rng):
        deconv = ConvTranspose2D(3, 2, kernel=4, stride=2, padding=1, rng=1)
        check_input_grad(deconv, rng.standard_normal((2, 3, 4, 4)))

    def test_parameter_gradients(self, rng):
        deconv = ConvTranspose2D(2, 2, kernel=4, stride=2, padding=1, rng=2)
        check_param_grads(deconv, rng.standard_normal((2, 2, 4, 4)))

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            ConvTranspose2D(1, 1, rng=0).backward(np.ones((1, 1, 4, 4)))


class TestAdjointness:
    def test_deconv_is_conv_adjoint(self, rng):
        """With shared weights and no bias, <conv(x), y> == <x, deconv(y)>.

        This is the defining relationship of transposed convolution; DCGAN's
        generator literally runs the discriminator's convolutions backwards.
        """
        conv = Conv2D(3, 5, kernel=4, stride=2, padding=1, bias=False, rng=0)
        deconv = ConvTranspose2D(5, 3, kernel=4, stride=2, padding=1, bias=False, rng=0)
        # deconv weight layout is (C_in=5, C_out=3, k, k); conv's is (5, 3, k, k).
        deconv.weight.data[...] = conv.weight.data
        x = rng.standard_normal((2, 3, 8, 8))
        y = rng.standard_normal((2, 5, 4, 4))
        lhs = float(np.sum(conv.forward(x) * y))
        rhs = float(np.sum(x * deconv.forward(y)))
        assert np.isclose(lhs, rhs)
