"""Sequential container: naming, activation caching, partial backward."""

import numpy as np
import pytest

from repro.nn import Dense, LeakyReLU, Sequential, Sigmoid


def make_net():
    return Sequential([
        Dense(6, 4, rng=0),
        ("hidden", LeakyReLU()),
        Dense(4, 1, rng=1),
        ("out", Sigmoid()),
    ])


class TestConstruction:
    def test_named_and_anonymous_layers(self):
        net = make_net()
        assert net.names == ["layer0", "hidden", "layer2", "out"]
        assert len(net) == 4

    def test_layer_index_lookup(self):
        net = make_net()
        assert net.layer_index("hidden") == 1
        with pytest.raises(KeyError, match="no layer named"):
            net.layer_index("missing")

    def test_rejects_non_layer(self):
        with pytest.raises(TypeError):
            Sequential([Dense(2, 2, rng=0), "not a layer"])

    def test_parameters_collects_all(self):
        net = make_net()
        assert len(net.parameters()) == 4  # two Dense layers x (W, b)


class TestForwardCache:
    def test_activation_by_name(self, rng):
        net = make_net()
        x = rng.standard_normal((3, 6))
        out = net.forward(x)
        assert out.shape == (3, 1)
        assert net.activation("hidden").shape == (3, 4)
        assert np.allclose(net.activation("out"), out)

    def test_activation_by_index(self, rng):
        net = make_net()
        net.forward(rng.standard_normal((2, 6)))
        assert net.activation(0).shape == (2, 4)

    def test_activation_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            make_net().activation("hidden")


class TestBackward:
    def test_full_backward_shape(self, rng):
        net = make_net()
        x = rng.standard_normal((3, 6))
        out = net.forward(x)
        grad = net.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_backward_from_intermediate_layer(self, rng):
        """Gradient injected at the hidden layer skips downstream layers."""
        net = make_net()
        x = rng.standard_normal((3, 6))
        net.forward(x)
        hidden = net.activation("hidden")
        grad = net.backward_from("hidden", np.ones_like(hidden))
        assert grad.shape == x.shape

    def test_backward_from_matches_manual_chain(self, rng):
        """backward_from('hidden', g) == Dense.backward(LeakyReLU.backward(g))."""
        dense = Dense(5, 3, rng=2)
        act = LeakyReLU()
        net = Sequential([dense, ("mid", act)])
        x = rng.standard_normal((2, 5))
        net.forward(x)
        g = rng.standard_normal((2, 3))
        expected = dense.backward(act.backward(g))
        dense.zero_grad()
        got = net.backward_from("mid", g)
        assert np.allclose(got, expected)

    def test_double_backward_same_forward(self, rng):
        """Two backward passes off one forward give identical input grads.

        The table-GAN generator update relies on this (adversarial and
        information gradients both flow through one discriminator forward).
        """
        net = make_net()
        x = rng.standard_normal((3, 6))
        out = net.forward(x)
        g = np.ones_like(out)
        first = net.backward(g)
        second = net.backward(g)
        assert np.allclose(first, second)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            make_net().backward(np.ones((1, 1)))


class TestZeroGrad:
    def test_zeroes_all_parameters(self, rng):
        net = make_net()
        out = net.forward(rng.standard_normal((2, 6)))
        net.backward(np.ones_like(out))
        assert any(np.any(p.grad != 0) for p in net.parameters())
        net.zero_grad()
        assert all(np.all(p.grad == 0) for p in net.parameters())
