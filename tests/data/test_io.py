"""CSV import/export for user-supplied tables."""

import numpy as np
import pytest

from repro.data.io import read_csv, write_csv
from repro.data.schema import ColumnKind, ColumnRole


@pytest.fixture()
def sample_csv(tmp_path):
    path = tmp_path / "people.csv"
    path.write_text(
        "ssn,zip,age,salary,disease,rich\n"
        "111,47677,29,3000.5,aids,0\n"
        "222,47672,22,4000.0,ebola,0\n"
        "333,47678,27,5000.25,cancer,1\n"
        "444,47905,53,6000.0,aids,1\n"
    )
    return str(path)


class TestReadCsv:
    def test_infers_kinds(self, sample_csv):
        table = read_csv(sample_csv, qids=("zip", "age"), label="rich",
                         identifiers=("ssn",), regression_target="salary")
        schema = table.schema
        assert "ssn" not in schema  # identifier dropped
        assert schema.spec("age").kind is ColumnKind.DISCRETE
        assert schema.spec("salary").kind is ColumnKind.CONTINUOUS
        assert schema.spec("disease").kind is ColumnKind.CATEGORICAL
        assert schema.spec("disease").categories == ("aids", "cancer", "ebola")
        assert schema.label == "rich"
        assert schema.qids == ("zip", "age")
        assert schema.regression_target == "salary"

    def test_values_parsed(self, sample_csv):
        table = read_csv(sample_csv, identifiers=("ssn",))
        assert np.allclose(table.column("salary"), [3000.5, 4000.0, 5000.25, 6000.0])
        # Disease codes follow the sorted vocabulary (aids=0, cancer=1, ebola=2).
        assert np.allclose(table.column("disease"), [0, 2, 1, 0])

    def test_force_categorical(self, sample_csv):
        table = read_csv(sample_csv, identifiers=("ssn",), categorical=("zip",))
        assert table.schema.spec("zip").kind is ColumnKind.CATEGORICAL

    def test_unknown_column_names_rejected(self, sample_csv):
        with pytest.raises(KeyError, match="qids"):
            read_csv(sample_csv, qids=("missing",))
        with pytest.raises(KeyError, match="label"):
            read_csv(sample_csv, label="missing")

    def test_empty_and_ragged_files_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(str(empty))
        header_only = tmp_path / "header.csv"
        header_only.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data"):
            read_csv(str(header_only))
        ragged = tmp_path / "ragged.csv"
        ragged.write_text("a,b\n1,2\n3\n")
        with pytest.raises(ValueError, match="ragged"):
            read_csv(str(ragged))


class TestRoundTrip:
    def test_write_then_read(self, sample_csv, tmp_path):
        table = read_csv(sample_csv, qids=("zip", "age"), label="rich",
                         identifiers=("ssn",))
        out = tmp_path / "round.csv"
        write_csv(table, str(out))
        again = read_csv(str(out), qids=("zip", "age"), label="rich")
        assert np.allclose(again.column("salary"), table.column("salary"))
        assert again.decode_column("disease") == table.decode_column("disease")

    def test_tablegan_on_csv_data(self, sample_csv, tmp_path):
        """The adoption path: CSV in, table-GAN, synthetic CSV out."""
        from repro import TableGAN, low_privacy

        # Tile the tiny CSV into enough rows to train on.
        table = read_csv(sample_csv, qids=("zip", "age"), label="rich",
                         identifiers=("ssn",))
        rng = np.random.default_rng(0)
        big = table.take(rng.integers(0, table.n_rows, 80))
        noisy = big.values + rng.normal(0, 0.01, big.values.shape)
        big = big.with_values(noisy)

        gan = TableGAN(low_privacy(epochs=1, batch_size=16, base_channels=8, seed=0))
        gan.fit(big)
        synthetic = gan.sample(20)
        out = tmp_path / "synthetic.csv"
        write_csv(synthetic, str(out))
        assert out.exists()
        again = read_csv(str(out))
        assert again.n_rows == 20
