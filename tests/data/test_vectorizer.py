"""Vectorizer: the 1-D record layout (§3.2 ablation)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.matrixizer import Vectorizer, length_for_features


class TestLengthForFeatures:
    @pytest.mark.parametrize("n,expected", [(1, 4), (4, 4), (5, 8), (14, 16), (23, 32)])
    def test_next_power_of_two(self, n, expected):
        assert length_for_features(n) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            length_for_features(0)


class TestVectorizer:
    def test_round_trip(self, rng):
        v = Vectorizer(14)
        records = rng.uniform(-1, 1, (6, 14))
        mats = v.to_matrices(records)
        assert mats.shape == (6, 1, 16)
        assert np.allclose(v.to_records(mats), records)

    def test_padding_zeroed(self, rng):
        v = Vectorizer(5)
        mats = v.to_matrices(rng.uniform(-1, 1, (3, 5)))
        assert np.all(mats[:, 0, 5:] == 0.0)
        assert v.padding == 3

    def test_feature_position_is_1d(self):
        v = Vectorizer(10)
        assert v.feature_position(7) == (7,)
        with pytest.raises(IndexError):
            v.feature_position(10)

    def test_shape_validation(self, rng):
        v = Vectorizer(6)
        with pytest.raises(ValueError):
            v.to_matrices(rng.uniform(-1, 1, (2, 7)))
        with pytest.raises(ValueError):
            v.to_records(rng.uniform(-1, 1, (2, 1, 16)))

    def test_explicit_length(self):
        assert Vectorizer(6, length=32).side == 32
        with pytest.raises(ValueError, match="too small"):
            Vectorizer(40, length=32)

    @settings(max_examples=25, deadline=None)
    @given(n_features=st.integers(1, 60), batch=st.integers(1, 6),
           seed=st.integers(0, 500))
    def test_round_trip_property(self, n_features, batch, seed):
        rng = np.random.default_rng(seed)
        v = Vectorizer(n_features)
        records = rng.uniform(-1, 1, (batch, n_features))
        assert np.allclose(v.to_records(v.to_matrices(records)), records)


class TestVectorLayoutEndToEnd:
    def test_fit_sample_vector_layout(self, adult_bundle):
        from repro import TableGAN, TableGanConfig

        config = TableGanConfig(
            layout="vector", epochs=2, batch_size=32, base_channels=8, seed=0
        )
        gan = TableGAN(config)
        gan.fit(adult_bundle.train)
        syn = gan.sample(50)
        assert syn.n_rows == 50
        assert syn.schema == adult_bundle.train.schema

    def test_vector_layout_save_load(self, adult_bundle, tmp_path):
        import numpy as np

        from repro import TableGAN, TableGanConfig

        config = TableGanConfig(
            layout="vector", epochs=1, batch_size=32, base_channels=8, seed=0
        )
        gan = TableGAN(config)
        gan.fit(adult_bundle.train)
        path = tmp_path / "vec.npz"
        gan.save(path)
        restored = TableGAN(config).load_generator(path, adult_bundle.train)
        a = gan.sample(20, rng=np.random.default_rng(4))
        b = restored.sample(20, rng=np.random.default_rng(4))
        assert np.allclose(a.values, b.values)

    def test_invalid_layout_rejected(self):
        from repro import TableGanConfig

        with pytest.raises(ValueError, match="layout"):
            TableGanConfig(layout="diagonal")
