"""The four synthetic datasets: schema shape, correlations, determinism."""

import numpy as np
import pytest

from repro.data.datasets import (
    DATASET_NAMES,
    PAPER_ROWS,
    generate_adult,
    generate_airline,
    generate_health,
    generate_lacity,
    load_dataset,
)
from repro.data.schema import ColumnKind

# Paper Table 3: (n_qids, n_sensitive incl. label).
TABLE3_SHAPE = {
    "lacity": (2, 21),
    "adult": (5, 9),
    "health": (4, 28),
    "airline": (2, 30),
}


class TestRegistry:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_loads_every_dataset(self, name):
        bundle = load_dataset(name, rows=200, seed=0)
        assert bundle.name == name
        assert bundle.n_train + bundle.n_test == 200

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            load_dataset("census")

    def test_test_fraction_matches_paper(self):
        bundle = load_dataset("adult", rows=500, seed=0)
        assert bundle.n_test == pytest.approx(100, abs=1)

    def test_paper_rows_recorded(self):
        assert PAPER_ROWS["airline"] == 1_000_000
        assert PAPER_ROWS["lacity"] == 15000


class TestSchemaShapes:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_qid_and_sensitive_counts_match_table3(self, name):
        bundle = load_dataset(name, rows=100, seed=0)
        schema = bundle.train.schema
        n_qids, n_sensitive = TABLE3_SHAPE[name]
        assert len(schema.qids) == n_qids
        assert len(schema.sensitive) == n_sensitive

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_every_dataset_has_label(self, name):
        bundle = load_dataset(name, rows=100, seed=0)
        assert bundle.train.schema.label is not None

    def test_health_has_no_regression_target(self):
        bundle = load_dataset("health", rows=100, seed=0)
        assert bundle.train.schema.regression_target is None

    @pytest.mark.parametrize("name", ["lacity", "adult", "airline"])
    def test_regression_targets(self, name):
        bundle = load_dataset(name, rows=100, seed=0)
        assert bundle.train.schema.regression_target is not None


class TestGenerators:
    @pytest.mark.parametrize("generate", [
        generate_lacity, generate_adult, generate_health, generate_airline,
    ])
    def test_deterministic(self, generate):
        a = generate(rows=100, seed=42)
        b = generate(rows=100, seed=42)
        assert np.allclose(a.values, b.values)

    @pytest.mark.parametrize("generate", [
        generate_lacity, generate_adult, generate_health, generate_airline,
    ])
    def test_categorical_codes_in_vocabulary(self, generate):
        t = generate(rows=300, seed=1)
        for spec in t.schema.columns:
            if spec.kind is ColumnKind.CATEGORICAL:
                col = t.column(spec.name)
                assert col.min() >= 0
                assert col.max() <= spec.n_categories - 1
                assert np.allclose(col, np.rint(col))

    @pytest.mark.parametrize("generate", [
        generate_lacity, generate_adult, generate_health, generate_airline,
    ])
    def test_rejects_tiny_row_counts(self, generate):
        with pytest.raises(ValueError):
            generate(rows=5)


class TestLearnableStructure:
    """The simulators must carry the label correlations the paper's
    classifier network and model-compatibility tests rely on."""

    def test_lacity_label_is_salary_median_split(self):
        t = generate_lacity(rows=1000, seed=3)
        salary = t.column("base_salary")
        label = t.column("high_salary")
        assert np.allclose(label, salary > np.median(salary))

    def test_lacity_quarters_track_salary(self):
        t = generate_lacity(rows=1000, seed=3)
        corr = np.corrcoef(t.column("base_salary"), t.column("q1_payments"))[0, 1]
        assert corr > 0.8

    def test_adult_label_is_hours_median_split(self):
        t = generate_adult(rows=1000, seed=3)
        hours = t.column("hours_per_week")
        assert np.allclose(t.column("long_hours"), hours > np.median(hours))

    def test_health_diabetes_tracks_glucose(self):
        t = generate_health(rows=3000, seed=3)
        glucose = t.column("glucose")
        diabetes = t.column("diabetes")
        mean_diabetic = glucose[diabetes == 1].mean()
        mean_healthy = glucose[diabetes == 0].mean()
        assert mean_diabetic > mean_healthy + 10.0

    def test_airline_price_tracks_distance_and_class(self):
        t = generate_airline(rows=2000, seed=3)
        corr = np.corrcoef(t.column("ticket_price"), t.column("distance_miles"))[0, 1]
        assert corr > 0.3
        price = t.column("ticket_price")
        fare_class = t.column("fare_class")
        assert price[fare_class >= 3].mean() > price[fare_class <= 1].mean()

    def test_airline_no_self_loops(self):
        t = generate_airline(rows=1000, seed=5)
        assert np.all(t.column("origin_airport") != t.column("dest_airport"))
