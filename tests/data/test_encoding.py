"""MinMaxCodec and TableCodec: range mapping, round trips, type restoration."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.encoding import MinMaxCodec, TableCodec
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table


class TestMinMaxCodec:
    def test_encodes_to_range(self):
        codec = MinMaxCodec().fit(np.array([0.0, 5.0, 10.0]))
        out = codec.encode(np.array([0.0, 5.0, 10.0]))
        assert np.allclose(out, [-1.0, 0.0, 1.0])

    def test_round_trip(self):
        values = np.array([3.0, 7.5, 12.0, 4.4])
        codec = MinMaxCodec().fit(values)
        assert np.allclose(codec.decode(codec.encode(values)), values)

    def test_decode_clips_overshoot(self):
        codec = MinMaxCodec().fit(np.array([0.0, 10.0]))
        # Generator tanh can only reach (-1, 1); values beyond clip to range.
        assert codec.decode(np.array([1.7]))[0] == 10.0
        assert codec.decode(np.array([-2.0]))[0] == 0.0

    def test_constant_column(self):
        codec = MinMaxCodec().fit(np.array([5.0, 5.0]))
        enc = codec.encode(np.array([5.0]))
        assert np.all(np.isfinite(enc))
        assert np.allclose(codec.decode(enc), 5.0)

    def test_requires_fit(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            MinMaxCodec().encode(np.array([1.0]))

    def test_rejects_bad_range(self):
        with pytest.raises(ValueError):
            MinMaxCodec(feature_range=(1.0, -1.0))

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=30
        ),
    )
    def test_round_trip_property(self, values):
        values = np.array(values)
        codec = MinMaxCodec().fit(values)
        encoded = codec.encode(values)
        assert encoded.min() >= -1.0 - 1e-9
        assert encoded.max() <= 1.0 + 1e-9
        assert np.allclose(codec.decode(encoded), values, atol=1e-6 * (1 + np.abs(values).max()))


def small_table():
    schema = TableSchema([
        ColumnSpec("x", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE),
        ColumnSpec("n", ColumnKind.DISCRETE, ColumnRole.SENSITIVE),
        ColumnSpec("c", ColumnKind.CATEGORICAL, ColumnRole.SENSITIVE, ("a", "b", "c")),
        ColumnSpec("y", ColumnKind.DISCRETE, ColumnRole.LABEL),
    ])
    values = np.array([
        [0.5, 3.0, 0.0, 0.0],
        [2.5, 7.0, 2.0, 1.0],
        [1.0, 5.0, 1.0, 0.0],
    ])
    return Table(values, schema)


class TestTableCodec:
    def test_encode_in_range(self):
        t = small_table()
        enc = TableCodec().fit(t).encode(t)
        assert enc.min() >= -1.0 and enc.max() <= 1.0

    def test_round_trip_table(self):
        t = small_table()
        codec = TableCodec().fit(t)
        back = codec.decode(codec.encode(t))
        assert np.allclose(back.values, t.values)

    def test_decode_restores_types(self):
        t = small_table()
        codec = TableCodec().fit(t)
        noisy = codec.encode(t) + 0.05
        decoded = codec.decode(noisy)
        # Discrete and categorical columns come back as integers in range.
        assert np.allclose(decoded.column("n"), np.rint(decoded.column("n")))
        assert decoded.column("c").min() >= 0
        assert decoded.column("c").max() <= 2

    def test_schema_mismatch_raises(self):
        t = small_table()
        codec = TableCodec().fit(t)
        other_schema = TableSchema([
            ColumnSpec("z", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE),
        ])
        other = Table(np.ones((2, 1)), other_schema)
        with pytest.raises(ValueError, match="schema"):
            codec.encode(other)

    def test_decode_wrong_width_raises(self):
        codec = TableCodec().fit(small_table())
        with pytest.raises(ValueError, match="expected"):
            codec.decode(np.zeros((2, 9)))

    def test_label_helpers(self):
        t = small_table()
        codec = TableCodec().fit(t)
        assert codec.label_position() == 3
        raw = np.array([0.0, 1.0])
        encoded = codec.encode_label(raw)
        assert np.allclose(codec.decode_label(encoded), raw)

    def test_label_helpers_without_label(self):
        schema = TableSchema([ColumnSpec("x", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE)])
        t = Table(np.ones((2, 1)), schema)
        codec = TableCodec().fit(t)
        with pytest.raises(ValueError, match="label"):
            codec.label_position()
