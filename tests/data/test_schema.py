"""Schema construction, validation, and role accessors."""

import pytest

from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema


def specs():
    return [
        ColumnSpec("zip", ColumnKind.DISCRETE, ColumnRole.QID),
        ColumnSpec("age", ColumnKind.DISCRETE, ColumnRole.QID),
        ColumnSpec("salary", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE),
        ColumnSpec("disease", ColumnKind.CATEGORICAL, ColumnRole.SENSITIVE,
                   ("aids", "ebola", "cancer")),
        ColumnSpec("rich", ColumnKind.DISCRETE, ColumnRole.LABEL),
    ]


class TestColumnSpec:
    def test_categorical_requires_categories(self):
        with pytest.raises(ValueError, match="needs categories"):
            ColumnSpec("c", ColumnKind.CATEGORICAL, ColumnRole.SENSITIVE)

    def test_non_categorical_rejects_categories(self):
        with pytest.raises(ValueError, match="must not set"):
            ColumnSpec("c", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE, ("a",))

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            ColumnSpec("", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE)

    def test_n_categories(self):
        spec = specs()[3]
        assert spec.n_categories == 3
        assert specs()[0].n_categories == 0


class TestTableSchema:
    def test_names_in_order(self):
        schema = TableSchema(specs())
        assert schema.names == ("zip", "age", "salary", "disease", "rich")

    def test_role_accessors(self):
        schema = TableSchema(specs())
        assert schema.qids == ("zip", "age")
        # The paper counts the label among sensitive attributes.
        assert schema.sensitive == ("salary", "disease", "rich")
        assert schema.label == "rich"

    def test_index_and_spec(self):
        schema = TableSchema(specs())
        assert schema.index("salary") == 2
        assert schema.spec("disease").kind is ColumnKind.CATEGORICAL
        with pytest.raises(KeyError):
            schema.index("missing")

    def test_contains(self):
        schema = TableSchema(specs())
        assert "age" in schema
        assert "missing" not in schema

    def test_duplicate_names_rejected(self):
        bad = specs() + [ColumnSpec("age", ColumnKind.DISCRETE, ColumnRole.SENSITIVE)]
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema(bad)

    def test_multiple_labels_rejected(self):
        bad = specs() + [ColumnSpec("rich2", ColumnKind.DISCRETE, ColumnRole.LABEL)]
        with pytest.raises(ValueError, match="at most one label"):
            TableSchema(bad)

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            TableSchema([])

    def test_regression_target_validated(self):
        with pytest.raises(ValueError, match="not in schema"):
            TableSchema(specs(), regression_target="missing")
        schema = TableSchema(specs(), regression_target="salary")
        assert schema.regression_target == "salary"

    def test_no_label_schema(self):
        schema = TableSchema(specs()[:4])
        assert schema.label is None

    def test_equality(self):
        assert TableSchema(specs()) == TableSchema(specs())
        assert TableSchema(specs()) != TableSchema(specs()[:4])
