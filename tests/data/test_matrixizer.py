"""Record <-> square matrix conversion (paper §3.2 step 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.matrixizer import Matrixizer, side_for_features


class TestSideForFeatures:
    @pytest.mark.parametrize("n,expected", [
        (1, 4), (14, 4), (16, 4), (17, 8), (23, 8), (64, 8), (65, 16), (256, 16),
    ])
    def test_smallest_power_of_two(self, n, expected):
        assert side_for_features(n) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            side_for_features(0)


class TestMatrixizer:
    def test_paper_example_24_values(self):
        """A 24-value record pads into a square matrix (paper §3.2 uses 5x5;
        we use the next power of two, 8x8, for exact conv geometry)."""
        m = Matrixizer(24)
        assert m.side == 8
        assert m.padding == 40

    def test_round_trip(self, rng):
        m = Matrixizer(23)
        records = rng.uniform(-1, 1, (10, 23))
        mats = m.to_matrices(records)
        assert mats.shape == (10, 1, 8, 8)
        assert np.allclose(m.to_records(mats), records)

    def test_padding_cells_are_zero(self, rng):
        m = Matrixizer(5, side=4)
        mats = m.to_matrices(rng.uniform(-1, 1, (3, 5)))
        flat = mats.reshape(3, -1)
        assert np.all(flat[:, 5:] == 0.0)

    def test_explicit_side(self):
        m = Matrixizer(10, side=16)
        assert m.side == 16
        with pytest.raises(ValueError, match="too small"):
            Matrixizer(20, side=4)

    def test_feature_position(self):
        m = Matrixizer(10, side=4)
        assert m.feature_position(0) == (0, 0)
        assert m.feature_position(5) == (1, 1)
        with pytest.raises(IndexError):
            m.feature_position(10)

    def test_shape_validation(self, rng):
        m = Matrixizer(6, side=4)
        with pytest.raises(ValueError, match="expected"):
            m.to_matrices(rng.uniform(-1, 1, (3, 7)))
        with pytest.raises(ValueError, match="expected"):
            m.to_records(rng.uniform(-1, 1, (3, 1, 8, 8)))

    @settings(max_examples=30, deadline=None)
    @given(
        n_features=st.integers(1, 70),
        batch=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_round_trip_property(self, n_features, batch, seed):
        rng = np.random.default_rng(seed)
        m = Matrixizer(n_features)
        records = rng.uniform(-1, 1, (batch, n_features))
        assert np.allclose(m.to_records(m.to_matrices(records)), records)
