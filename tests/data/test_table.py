"""Table container semantics."""

import numpy as np
import pytest

from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table


def make_table():
    schema = TableSchema([
        ColumnSpec("a", ColumnKind.CONTINUOUS, ColumnRole.QID),
        ColumnSpec("b", ColumnKind.DISCRETE, ColumnRole.SENSITIVE),
        ColumnSpec("c", ColumnKind.CATEGORICAL, ColumnRole.SENSITIVE, ("x", "y", "z")),
        ColumnSpec("label", ColumnKind.DISCRETE, ColumnRole.LABEL),
    ], regression_target="a")
    values = np.array([
        [1.0, 10.0, 0.0, 0.0],
        [2.0, 20.0, 1.0, 1.0],
        [3.0, 30.0, 2.0, 0.0],
        [4.0, 40.0, 1.0, 1.0],
    ])
    return Table(values, schema)


class TestBasics:
    def test_dimensions(self):
        t = make_table()
        assert (t.n_rows, t.n_columns) == (4, 4)
        assert len(t) == 4

    def test_column_access(self):
        t = make_table()
        assert np.allclose(t.column("b"), [10, 20, 30, 40])
        with pytest.raises(KeyError):
            t.column("missing")

    def test_columns_submatrix_order(self):
        t = make_table()
        sub = t.columns(["c", "a"])
        assert np.allclose(sub[:, 0], t.column("c"))
        assert np.allclose(sub[:, 1], t.column("a"))

    def test_shape_validation(self):
        t = make_table()
        with pytest.raises(ValueError, match="columns"):
            Table(np.zeros((2, 3)), t.schema)
        with pytest.raises(ValueError, match="2-D"):
            Table(np.zeros(4), t.schema)

    def test_take_and_head(self):
        t = make_table()
        sub = t.take([2, 0])
        assert np.allclose(sub.column("a"), [3.0, 1.0])
        assert t.head(2).n_rows == 2

    def test_with_values_shares_schema(self):
        t = make_table()
        t2 = t.with_values(t.values * 2)
        assert t2.schema is t.schema
        assert np.allclose(t2.column("a"), 2 * t.column("a"))


class TestTaskSplits:
    def test_features_and_label(self):
        t = make_table()
        X, y = t.features_and_label()
        assert X.shape == (4, 3)
        assert np.allclose(y, [0, 1, 0, 1])

    def test_features_and_target_drops_label_too(self):
        t = make_table()
        X, y = t.features_and_target()
        # Drops both 'a' (target) and 'label' -> 2 feature columns.
        assert X.shape == (4, 2)
        assert np.allclose(y, [1, 2, 3, 4])

    def test_missing_label_raises(self):
        t = make_table()
        schema = TableSchema(list(t.schema.columns[:3]))
        no_label = Table(t.values[:, :3], schema)
        with pytest.raises(ValueError, match="label"):
            no_label.features_and_label()

    def test_missing_target_raises(self):
        t = make_table()
        schema = TableSchema(list(t.schema.columns))  # no regression target
        no_target = Table(t.values, schema)
        with pytest.raises(ValueError, match="regression"):
            no_target.features_and_target()


class TestDecoding:
    def test_decode_categorical(self):
        t = make_table()
        assert t.decode_column("c") == ["x", "y", "z", "y"]

    def test_decode_clips_out_of_vocabulary(self):
        t = make_table()
        values = t.values.copy()
        values[0, 2] = 99.0
        assert t.with_values(values).decode_column("c")[0] == "z"

    def test_decode_discrete_rounds(self):
        t = make_table()
        values = t.values.copy()
        values[0, 1] = 10.4
        assert t.with_values(values).decode_column("b")[0] == 10

    def test_to_rows(self):
        rows = make_table().to_rows(2)
        assert len(rows) == 2
        assert rows[0]["c"] == "x"
        assert rows[1]["label"] == 1

    def test_describe(self):
        stats = make_table().describe()
        assert stats["a"]["min"] == 1.0
        assert stats["a"]["max"] == 4.0
