"""Train/test splitting."""

import numpy as np
import pytest

from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.splits import train_test_split
from repro.data.table import Table


def table_of(n):
    schema = TableSchema([ColumnSpec("x", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE)])
    return Table(np.arange(n, dtype=float).reshape(-1, 1), schema)


class TestTrainTestSplit:
    def test_sizes(self):
        train, test = train_test_split(table_of(100), test_fraction=0.2, seed=0)
        assert train.n_rows == 80
        assert test.n_rows == 20

    def test_partition_is_exact(self):
        t = table_of(50)
        train, test = train_test_split(t, test_fraction=0.3, seed=1)
        combined = np.sort(np.concatenate([train.values[:, 0], test.values[:, 0]]))
        assert np.allclose(combined, np.arange(50))

    def test_deterministic_with_seed(self):
        t = table_of(30)
        a1, b1 = train_test_split(t, seed=7)
        a2, b2 = train_test_split(t, seed=7)
        assert np.allclose(a1.values, a2.values)
        assert np.allclose(b1.values, b2.values)

    def test_different_seeds_differ(self):
        t = table_of(100)
        a1, _ = train_test_split(t, seed=1)
        a2, _ = train_test_split(t, seed=2)
        assert not np.allclose(a1.values, a2.values)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            train_test_split(table_of(10), test_fraction=0.0)
        with pytest.raises(ValueError):
            train_test_split(table_of(10), test_fraction=1.0)

    def test_rejects_empty_partition(self):
        with pytest.raises(ValueError, match="empty partition"):
            train_test_split(table_of(3), test_fraction=0.01)
