"""The TableGAN facade: fit, sample, scores, persistence."""

import numpy as np
import pytest

from repro import TableGAN, low_privacy
from repro.data.schema import ColumnKind


class TestFitSample:
    def test_history_populated(self, trained_gan, tiny_gan_config):
        assert len(trained_gan.history_.epochs) == tiny_gan_config.epochs
        assert trained_gan.train_seconds_ > 0

    def test_sample_is_schema_valid(self, trained_gan, adult_bundle):
        syn = trained_gan.sample(100)
        schema = adult_bundle.train.schema
        assert syn.schema == schema
        assert syn.n_rows == 100
        for spec in schema.columns:
            col = syn.column(spec.name)
            if spec.kind is ColumnKind.CATEGORICAL:
                assert col.min() >= 0
                assert col.max() <= spec.n_categories - 1
                assert np.allclose(col, np.rint(col))
            if spec.kind is ColumnKind.DISCRETE:
                assert np.allclose(col, np.rint(col))

    def test_sample_within_training_ranges(self, trained_gan, adult_bundle):
        """Min–max decoding clips to the training range by construction."""
        syn = trained_gan.sample(200)
        train = adult_bundle.train
        for name in train.schema.names:
            assert syn.column(name).min() >= train.column(name).min() - 1e-9
            assert syn.column(name).max() <= train.column(name).max() + 1e-9

    def test_sample_encoded_range(self, trained_gan):
        encoded = trained_gan.sample_encoded(50)
        assert encoded.shape[0] == 50
        assert encoded.min() >= -1.0 and encoded.max() <= 1.0

    def test_samples_are_not_copies_of_training_rows(self, trained_gan, adult_bundle):
        """No one-to-one correspondence: synthetic rows differ from real ones."""
        syn = trained_gan.sample(50)
        train_rows = {tuple(np.round(r, 4)) for r in adult_bundle.train.values}
        exact_copies = sum(
            tuple(np.round(r, 4)) in train_rows for r in syn.values
        )
        assert exact_copies < 5

    def test_sampling_deterministic_with_rng(self, trained_gan):
        a = trained_gan.sample(20, rng=np.random.default_rng(3))
        b = trained_gan.sample(20, rng=np.random.default_rng(3))
        assert np.allclose(a.values, b.values)

    def test_unfitted_sample_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            TableGAN(low_privacy()).sample(10)


class TestDiscriminatorScores:
    def test_scores_are_probabilities(self, trained_gan, adult_bundle):
        scores = trained_gan.discriminator_scores(adult_bundle.train.head(32))
        assert scores.shape == (32,)
        assert np.all((scores >= 0) & (scores <= 1))


class TestPersistence:
    def test_save_load_round_trip(self, trained_gan, adult_bundle, tiny_gan_config, tmp_path):
        path = tmp_path / "model.npz"
        trained_gan.save(path)
        restored = TableGAN(tiny_gan_config).load_generator(path, adult_bundle.train)
        rng_a = np.random.default_rng(9)
        rng_b = np.random.default_rng(9)
        original = trained_gan.sample(30, rng=rng_a)
        loaded = restored.sample(30, rng=rng_b)
        assert np.allclose(original.values, loaded.values)

    def test_load_rejects_wrong_schema_width(self, trained_gan, lacity_bundle, tiny_gan_config, tmp_path):
        path = tmp_path / "model.npz"
        trained_gan.save(path)
        with pytest.raises(ValueError, match="features"):
            TableGAN(tiny_gan_config).load_generator(path, lacity_bundle.train)

    def test_save_unfitted_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            TableGAN(low_privacy()).save(tmp_path / "x.npz")


class TestNoLabelDataset:
    def test_fit_without_label_disables_classifier(self, adult_bundle):
        from repro.data.schema import TableSchema
        from repro.data.table import Table

        # Strip the label column -> classifier must be silently disabled.
        schema = adult_bundle.train.schema
        keep = [i for i, c in enumerate(schema.columns) if c.name != schema.label]
        new_schema = TableSchema([schema.columns[i] for i in keep])
        table = Table(adult_bundle.train.values[:, keep], new_schema)
        gan = TableGAN(low_privacy(epochs=1, batch_size=32, base_channels=8, seed=0))
        gan.fit(table)
        assert gan.classifier_ is None
        assert gan.sample(10).n_rows == 10


class TestCrossDtypePersistence:
    def test_load_preserves_saved_dtype(self, adult_bundle, tmp_path):
        """A float64 archive loads as float64 even under a float32 config."""
        from repro.core.config import low_privacy

        config64 = low_privacy(epochs=1, batch_size=32, base_channels=8,
                               seed=11, dtype="float64")
        gan64 = TableGAN(config64).fit(adult_bundle.train)
        path = tmp_path / "model64.npz"
        gan64.save(path)

        restored = TableGAN(
            low_privacy(epochs=1, batch_size=32, base_channels=8, seed=11)
        ).load_generator(path, adult_bundle.train)
        assert all(
            p.data.dtype == np.float64 for p in restored.generator_.parameters()
        )
        original = gan64.sample(20, rng=np.random.default_rng(4))
        loaded = restored.sample(20, rng=np.random.default_rng(4))
        assert np.allclose(original.values, loaded.values)
