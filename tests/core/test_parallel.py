"""Data-parallel training: bit-exact N-invariance, ordered reduction,
worker-count-portable checkpoints, and loud crash behaviour.

The headline contract: a :class:`ParallelTrainer` run is a pure function
of (data, config, grad_shards, schedule, seed) — **never of the worker
count**.  Weights, BatchNorm running statistics, EWMA feature statistics,
and the loss history must be bit-identical for every N.
"""

import os
import signal

import numpy as np
import pytest

from repro.core.checkpoint import TrainerCheckpointer, TrainingInterrupted
from repro.core.config import TableGanConfig
from repro.core.networks import build_classifier, build_discriminator, build_generator
from repro.core.parallel import (
    ParallelTrainer,
    ParallelTrainingError,
    shard_bounds,
)
from repro.nn import Sequential, state_dict
from repro.nn.flatbuf import FlatParameterBuffer
from repro.nn.layers import Dense
from repro.nn.optim import reference_optimizers
from repro.utils.faults import FaultError, FaultPlan

DATA_SEED = 7
TRAIN_SEED = 3
SIDE = 4


def tiny_config(**overrides):
    defaults = dict(
        epochs=2, batch_size=16, latent_dim=10, base_channels=8, seed=0,
        generator_updates=1,
    )
    defaults.update(overrides)
    return TableGanConfig(**defaults)


def make_trainer(workers, config=None, grad_shards=4, with_classifier=True,
                 **trainer_kwargs):
    config = config or tiny_config()
    dtype = config.np_dtype
    gen = build_generator(SIDE, config.latent_dim, config.base_channels,
                          rng=0, dtype=dtype)
    disc = build_discriminator(SIDE, config.base_channels, rng=1, dtype=dtype)
    clf = (build_classifier(SIDE, config.base_channels, rng=2, dtype=dtype)
           if with_classifier else None)
    cfg = config if with_classifier else config.with_overrides(use_classifier=False)
    return ParallelTrainer(
        gen, disc, clf, cfg,
        label_cell=(0, 3) if with_classifier else None,
        workers=workers, grad_shards=grad_shards, **trainer_kwargs,
    )


def make_matrices(n=64):
    rng = np.random.default_rng(DATA_SEED)
    mats = rng.uniform(-0.5, 0.5, (n, 1, SIDE, SIDE))
    mats[:, 0, 0, 3] = np.sign(mats[:, 0, 0, 0])
    return mats


def full_state(trainer):
    """Weights + BN running stats for all nets, plus the EWMA statistics."""
    snapshot = {}
    for tag, net in (("g", trainer.generator), ("d", trainer.discriminator),
                     ("c", trainer.classifier)):
        if net is None:
            continue
        for key, value in state_dict(net).items():
            snapshot[f"{tag}/{key}"] = value
    for name in ("fx_mean", "fx_sd", "fz_mean", "fz_sd"):
        snapshot[f"stats/{name}"] = getattr(trainer.stats, name).copy()
    return snapshot


def assert_state_identical(expected, actual):
    assert set(expected) == set(actual)
    for key in expected:
        assert np.array_equal(expected[key], actual[key]), key


def run_training(workers, config=None, **kwargs):
    trainer = make_trainer(workers, config=config, **kwargs)
    history = trainer.train(make_matrices(), rng=TRAIN_SEED)
    return trainer, history


class TestShardBounds:
    def test_even_split(self):
        assert shard_bounds(16, 4) == [(0, 4), (4, 8), (8, 12), (12, 16)]

    def test_remainder_goes_to_leading_shards(self):
        assert shard_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_single_shard_is_whole_batch(self):
        assert shard_bounds(7, 1) == [(0, 7)]

    def test_bounds_partition_rows(self):
        for rows, shards in [(16, 4), (17, 4), (31, 5), (8, 8)]:
            bounds = shard_bounds(rows, shards)
            assert bounds[0][0] == 0 and bounds[-1][1] == rows
            for (_, stop), (start, _) in zip(bounds, bounds[1:]):
                assert stop == start
            assert all(stop > start for start, stop in bounds)

    def test_more_shards_than_rows_rejected(self):
        with pytest.raises(ValueError, match="cannot split"):
            shard_bounds(3, 4)

    def test_zero_shards_rejected(self):
        with pytest.raises(ValueError, match="shards must be"):
            shard_bounds(8, 0)


class TestReductionOrder:
    """The all-reduce is an *ordered* sum: shard index, not arrival order."""

    def make_flat(self, dtype):
        net = Sequential([Dense(5, 3, rng=0, dtype=dtype)])
        return net.flatten_parameters()

    def test_float_addition_order_matters_here(self):
        """The hazard is real: permuting the float32 sum changes the bits."""
        a = np.float32(1e8)
        b = np.float32(1.0)
        c = np.float32(-1e8)
        assert (a + b) + c != (a + c) + b

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_reduce_matches_manual_shard_order_sum(self, dtype):
        flat = self.make_flat(dtype)
        rng = np.random.default_rng(0)
        shards = [
            [(rng.standard_normal(size) * 10.0 ** rng.integers(-3, 4)).astype(dt)
             for dt, size in flat.group_specs()]
            for _ in range(4)
        ]
        flat.reduce_grads(shards)
        for i, group in enumerate(flat.groups):
            expected = shards[0][i].copy()
            for contrib in shards[1:]:
                expected += contrib[i]
            assert np.array_equal(group.grad, expected)

    def test_worker_arrival_order_cannot_change_the_sum(self):
        """Shard buffers are indexed slots: however workers raced to fill
        them, the reduction visits slot 0..S-1 — so any arrival
        permutation of the same shard payloads reduces identically."""
        flat = self.make_flat(np.float32)
        rng = np.random.default_rng(1)
        shards = [
            [(rng.standard_normal(size) * 10.0 ** rng.integers(-4, 5)).astype(dt)
             for dt, size in flat.group_specs()]
            for _ in range(4)
        ]
        flat.reduce_grads(shards)
        reference = [group.grad.copy() for group in flat.groups]
        for order in [(3, 2, 1, 0), (1, 3, 0, 2), (2, 0, 3, 1)]:
            # Simulate out-of-order arrival: deliver payloads in a
            # scrambled order into the rank-indexed slot table, then
            # reduce the slots positionally (what the master does).
            slots = {}
            for rank in order:
                slots[rank] = shards[rank]
            flat.reduce_grads([slots[s] for s in range(4)])
            for group, expected in zip(flat.groups, reference):
                assert np.array_equal(group.grad, expected)

    def test_permuting_shard_slots_does_change_the_sum(self):
        """Counterpoint proving the order is load-bearing: summing the
        same buffers in a *different slot order* yields different bits —
        exactly what an arrival-order reduction would have produced."""
        flat = self.make_flat(np.float32)
        rng = np.random.default_rng(2)
        shards = [
            [(rng.standard_normal(size) * 10.0 ** rng.integers(-6, 7)).astype(dt)
             for dt, size in flat.group_specs()]
            for _ in range(4)
        ]
        flat.reduce_grads(shards)
        reference = [group.grad.copy() for group in flat.groups]
        differs = False
        for order in [(3, 2, 1, 0), (1, 3, 0, 2), (2, 0, 3, 1)]:
            flat.reduce_grads([shards[s] for s in order])
            if any(not np.array_equal(group.grad, expected)
                   for group, expected in zip(flat.groups, reference)):
                differs = True
        assert differs, (
            "every permutation of these float32 shard sums was associative; "
            "the fixture no longer demonstrates the hazard"
        )


class TestValidation:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            make_trainer(0)

    def test_grad_shards_must_be_positive(self):
        with pytest.raises(ValueError, match="grad_shards"):
            make_trainer(1, grad_shards=0)

    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="round_timeout_s"):
            make_trainer(1, round_timeout_s=0)

    def test_reference_optimizers_rejected(self):
        with reference_optimizers():
            with pytest.raises(ParallelTrainingError, match="fused"):
                make_trainer(1)

    def test_batch_smaller_than_shards_rejected(self):
        trainer = make_trainer(1, config=tiny_config(batch_size=4),
                               grad_shards=8)
        with pytest.raises(ParallelTrainingError, match="gradient shards"):
            trainer.train(make_matrices(n=4), rng=TRAIN_SEED)


@pytest.fixture(scope="module")
def baseline_f64():
    """One single-process float64 run: the invariant every N must hit."""
    trainer, history = run_training(1)
    return full_state(trainer), history


@pytest.fixture(scope="module")
def baseline_f32():
    trainer, history = run_training(1, config=tiny_config(dtype="float32"))
    return full_state(trainer), history


@pytest.mark.slow
@pytest.mark.mp
class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", [2, 3, 4])
    def test_float64_bit_identical(self, workers, baseline_f64):
        expected_state, expected_history = baseline_f64
        trainer, history = run_training(workers)
        assert_state_identical(expected_state, full_state(trainer))
        assert history.epochs == expected_history.epochs
        assert history.final_l_mean == expected_history.final_l_mean
        assert history.final_l_sd == expected_history.final_l_sd

    @pytest.mark.parametrize("workers", [2, 4])
    def test_float32_bit_identical(self, workers, baseline_f32):
        expected_state, expected_history = baseline_f32
        trainer, history = run_training(
            workers, config=tiny_config(dtype="float32")
        )
        assert_state_identical(expected_state, full_state(trainer))
        assert history.epochs == expected_history.epochs

    def test_excess_workers_clamp_to_shards(self, baseline_f64):
        """workers > grad_shards leaves ranks idle, never changes results."""
        expected_state, _ = baseline_f64
        trainer, _ = run_training(6)
        assert_state_identical(expected_state, full_state(trainer))

    def test_without_classifier(self):
        config = tiny_config(use_classifier=False, epochs=1)
        base_trainer, base_history = run_training(
            1, config=config, with_classifier=False
        )
        trainer, history = run_training(2, config=config, with_classifier=False)
        assert_state_identical(full_state(base_trainer), full_state(trainer))
        assert history.epochs == base_history.epochs

    def test_worker_pids_lifecycle(self):
        trainer, _ = run_training(2, config=tiny_config(epochs=1))
        # Children are reaped on the way out of train().
        assert trainer.worker_pids == []


@pytest.mark.slow
@pytest.mark.mp
class TestCheckpointPortability:
    """The fingerprint covers grad_shards + schedule but not workers, so a
    checkpoint taken at one worker count resumes bit-exactly at another."""

    @staticmethod
    def stop_after(checkpointer, n_batches):
        original = checkpointer.on_batch
        count = [0]

        def hooked(*args, **kwargs):
            count[0] += 1
            if count[0] == n_batches:
                checkpointer.request_stop()
            return original(*args, **kwargs)

        checkpointer.on_batch = hooked

    def test_checkpoint_at_n4_resumes_at_n2(self, tmp_path, baseline_f64):
        expected_state, expected_history = baseline_f64
        matrices = make_matrices()

        interrupted = TrainerCheckpointer(tmp_path, every_batches=1)
        self.stop_after(interrupted, 6)  # mid epoch 1
        with pytest.raises(TrainingInterrupted) as excinfo:
            make_trainer(4).train(matrices, rng=TRAIN_SEED,
                                  checkpointer=interrupted)
        assert excinfo.value.epoch == 1
        assert excinfo.value.batch_start > 0

        resumed = make_trainer(2)
        history = resumed.train(matrices, rng=TRAIN_SEED,
                                checkpointer=TrainerCheckpointer(tmp_path))
        assert_state_identical(expected_state, full_state(resumed))
        assert history.epochs == expected_history.epochs

    def test_checkpoint_at_n2_resumes_single_process(self, tmp_path,
                                                     baseline_f64):
        expected_state, _ = baseline_f64
        matrices = make_matrices()

        interrupted = TrainerCheckpointer(tmp_path, every_batches=1)
        self.stop_after(interrupted, 3)
        with pytest.raises(TrainingInterrupted):
            make_trainer(2).train(matrices, rng=TRAIN_SEED,
                                  checkpointer=interrupted)

        resumed = make_trainer(1)
        resumed.train(matrices, rng=TRAIN_SEED,
                      checkpointer=TrainerCheckpointer(tmp_path))
        assert_state_identical(expected_state, full_state(resumed))

    def test_different_grad_shards_refused(self, tmp_path):
        matrices = make_matrices()
        interrupted = TrainerCheckpointer(tmp_path, every_batches=1)
        self.stop_after(interrupted, 2)
        with pytest.raises(TrainingInterrupted):
            make_trainer(1, grad_shards=4).train(matrices, rng=TRAIN_SEED,
                                                 checkpointer=interrupted)
        from repro.core.checkpoint import CheckpointError

        with pytest.raises(CheckpointError,
                           match="different training configuration"):
            make_trainer(1, grad_shards=2).train(
                matrices, rng=TRAIN_SEED,
                checkpointer=TrainerCheckpointer(tmp_path),
            )


@pytest.mark.chaos
@pytest.mark.mp
class TestCrashBehaviour:
    def test_injected_fault_fails_the_epoch_loudly(self):
        """An armed ``parallel.reduce`` seam aborts the run before the
        faulted round's gradient is applied — no step happens on a sum
        that was never completed."""
        trainer = make_trainer(1, config=tiny_config(epochs=1))
        before = [p.data.copy() for p in trainer.generator.parameters()]
        with FaultPlan().arm("parallel.reduce", "raise") as plan:
            with pytest.raises(FaultError):
                trainer.train(make_matrices(), rng=TRAIN_SEED)
        assert plan.fired("parallel.reduce") == 1
        # The very first shard publish faulted, so no optimizer ever
        # stepped: the generator still holds its initial weights.
        for param, original in zip(trainer.generator.parameters(), before):
            assert np.array_equal(param.data, original), param.name

    def test_worker_failure_surfaces_its_error(self, monkeypatch):
        """A worker that dies with an exception mid-round reports it; the
        master turns the report into a loud ParallelTrainingError instead
        of stepping on partial gradients."""
        from repro.core import parallel as parallel_module

        original = parallel_module._ShardExecutor.run_round

        def poisoned(self, offset, rows, ops, reuse_fake):
            # Shards are assigned round-robin: with 2 processes and 4
            # shards, only the worker (rank 1) owns shard 1 — so this
            # raises in the worker process and nowhere else.
            if 1 in self.shard_ids:
                raise RuntimeError("poisoned shard")
            return original(self, offset, rows, ops, reuse_fake)

        monkeypatch.setattr(parallel_module._ShardExecutor, "run_round",
                            poisoned)
        trainer = make_trainer(2, config=tiny_config(epochs=1),
                               round_timeout_s=30.0)
        with pytest.raises(ParallelTrainingError) as excinfo:
            trainer.train(make_matrices(), rng=TRAIN_SEED)
        assert "poisoned shard" in str(excinfo.value)
        assert "partial gradient" in str(excinfo.value)

    def test_hard_worker_kill_detected(self, tmp_path):
        """SIGKILL a child mid-run: the master must fail the epoch, not
        silently continue with partial gradients."""
        trainer = make_trainer(2, config=tiny_config(epochs=1),
                               round_timeout_s=30.0)
        checkpointer = TrainerCheckpointer(tmp_path, every_batches=1)
        original = checkpointer.on_batch

        def kill_then_save(inner_trainer, rng, **kwargs):
            result = original(inner_trainer, rng, **kwargs)
            if kwargs["n_batches"] == 1:
                os.kill(inner_trainer.worker_pids[0], signal.SIGKILL)
            return result

        checkpointer.on_batch = kill_then_save
        with pytest.raises(ParallelTrainingError, match="died"):
            trainer.train(make_matrices(), rng=TRAIN_SEED,
                          checkpointer=checkpointer)

    def test_resume_after_crash_is_bit_exact(self, tmp_path, baseline_f64):
        """A faulted run leaves a consistent checkpoint: resuming from it
        (at a different worker count) reproduces the uninterrupted run."""
        expected_state, expected_history = baseline_f64
        matrices = make_matrices()

        crashed = make_trainer(1)
        # Fire deep enough into the run that whole batches (and their
        # per-batch checkpoints) completed before the crash.
        with FaultPlan().arm("parallel.reduce", "raise", after=80):
            with pytest.raises(FaultError):
                crashed.train(matrices, rng=TRAIN_SEED,
                              checkpointer=TrainerCheckpointer(
                                  tmp_path, every_batches=1))

        resumed = make_trainer(2)
        history = resumed.train(matrices, rng=TRAIN_SEED,
                                checkpointer=TrainerCheckpointer(tmp_path))
        assert_state_identical(expected_state, full_state(resumed))
        assert history.epochs == expected_history.epochs
