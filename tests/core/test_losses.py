"""The three table-GAN losses and the EWMA feature statistics."""

import numpy as np
import pytest

from repro.core.losses import (
    FeatureStats,
    classification_loss,
    discriminator_loss,
    generator_adversarial_loss,
    information_loss,
)
from repro.nn.losses import sigmoid


class TestFeatureStats:
    def test_initialized_to_zero(self):
        """Algorithm 2 line 4: all four statistics start at zero vectors."""
        stats = FeatureStats(8)
        for vec in (stats.fx_mean, stats.fx_sd, stats.fz_mean, stats.fz_sd):
            assert np.all(vec == 0.0)

    def test_ewma_update_rule(self, rng):
        stats = FeatureStats(4, weight=0.9)
        batch = rng.standard_normal((16, 4))
        stats.update_real(batch)
        assert np.allclose(stats.fx_mean, 0.1 * batch.mean(axis=0))
        assert np.allclose(stats.fx_sd, 0.1 * batch.std(axis=0))

    def test_converges_to_true_statistics(self, rng):
        """Repeated updates with stationary batches approach batch stats."""
        stats = FeatureStats(3, weight=0.9)
        batch = rng.standard_normal((64, 3)) + 5.0
        for _ in range(200):
            stats.update_synthetic(batch)
        assert np.allclose(stats.fz_mean, batch.mean(axis=0), atol=1e-6)

    def test_l_mean_l_sd(self):
        stats = FeatureStats(2)
        stats.fx_mean = np.array([1.0, 0.0])
        stats.fz_mean = np.array([0.0, 0.0])
        assert stats.l_mean == pytest.approx(1.0)
        stats.fx_sd = np.array([0.0, 2.0])
        assert stats.l_sd == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FeatureStats(0)
        with pytest.raises(ValueError):
            FeatureStats(4, weight=1.0)


class TestDiscriminatorLoss:
    def test_confident_correct_is_low(self):
        loss, _, _ = discriminator_loss(
            np.full((4, 1), 10.0), np.full((4, 1), -10.0)
        )
        assert loss < 1e-3

    def test_confident_wrong_is_high(self):
        loss, _, _ = discriminator_loss(
            np.full((4, 1), -10.0), np.full((4, 1), 10.0)
        )
        assert loss > 10.0

    def test_gradient_signs(self):
        logits = np.zeros((2, 1))
        _, grad_real, grad_fake = discriminator_loss(logits, logits)
        # Real half pushes logits up (negative grad for descent); fake down.
        assert np.all(grad_real < 0)
        assert np.all(grad_fake > 0)

    def test_gradients_match_numerical(self, rng):
        real = rng.standard_normal((3, 1))
        fake = rng.standard_normal((3, 1))
        _, grad_real, grad_fake = discriminator_loss(real, fake)
        eps = 1e-6
        for i in range(3):
            bumped = real.copy()
            bumped[i] += eps
            plus, _, _ = discriminator_loss(bumped, fake)
            bumped[i] -= 2 * eps
            minus, _, _ = discriminator_loss(bumped, fake)
            assert np.isclose(grad_real[i, 0], (plus - minus) / (2 * eps), atol=1e-6)


class TestGeneratorAdversarialLoss:
    def test_non_saturating_gradient_strong_when_fooled_badly(self):
        """-log D(G(z)) keeps gradients alive when D rejects the fakes."""
        _, grad_weak = generator_adversarial_loss(np.full((1, 1), -10.0))
        _, grad_strong = generator_adversarial_loss(np.full((1, 1), 10.0))
        assert abs(grad_weak[0, 0]) > abs(grad_strong[0, 0])

    def test_saturating_variant_matches_eq1(self, rng):
        logits = rng.standard_normal((4, 1))
        loss, grad = generator_adversarial_loss(logits, saturating=True)
        p = sigmoid(logits)
        assert np.isclose(loss, np.mean(np.log(1 - p + 1e-12)))
        assert np.allclose(grad, -p / 4)

    def test_non_saturating_gradient_numerical(self, rng):
        logits = rng.standard_normal((3, 1))
        _, grad = generator_adversarial_loss(logits)
        eps = 1e-6
        for i in range(3):
            bumped = logits.copy()
            bumped[i] += eps
            plus, _ = generator_adversarial_loss(bumped)
            bumped[i] -= 2 * eps
            minus, _ = generator_adversarial_loss(bumped)
            assert np.isclose(grad[i, 0], (plus - minus) / (2 * eps), atol=1e-6)


class TestInformationLoss:
    def make_stats(self, l_mean=1.0, l_sd=0.5, width=4):
        stats = FeatureStats(width)
        stats.fx_mean = np.zeros(width)
        stats.fz_mean = np.zeros(width)
        stats.fz_mean[0] = l_mean
        stats.fx_sd = np.zeros(width)
        stats.fz_sd = np.zeros(width)
        stats.fz_sd[1] = l_sd
        return stats

    def test_loss_is_hinged_discrepancy(self, rng):
        stats = self.make_stats(l_mean=1.0, l_sd=0.5)
        feats = rng.standard_normal((8, 4))
        loss, _ = information_loss(stats, feats, delta_mean=0.2, delta_sd=0.2)
        assert loss == pytest.approx((1.0 - 0.2) + (0.5 - 0.2))

    def test_hinge_gates_gradient(self, rng):
        """δ above the discrepancy: no loss, no gradient — the privacy knob."""
        stats = self.make_stats(l_mean=0.1, l_sd=0.1)
        feats = rng.standard_normal((8, 4))
        loss, grad = information_loss(stats, feats, delta_mean=0.5, delta_sd=0.5)
        assert loss == 0.0
        assert np.all(grad == 0.0)

    def test_partial_activation(self, rng):
        stats = self.make_stats(l_mean=1.0, l_sd=0.01)
        feats = rng.standard_normal((8, 4))
        loss, grad = information_loss(stats, feats, delta_mean=0.0, delta_sd=0.5)
        assert loss == pytest.approx(1.0)
        assert np.any(grad != 0.0)

    def test_mean_gradient_direction(self, rng):
        """The mean-term gradient pushes synthetic features toward real ones."""
        stats = self.make_stats(l_mean=2.0, l_sd=0.0)
        feats = rng.standard_normal((8, 4))
        _, grad = information_loss(stats, feats, delta_mean=0.0, delta_sd=np.inf)
        # fz_mean exceeds fx_mean along axis 0 -> descent lowers feature 0.
        assert np.all(grad[:, 0] > 0)
        assert np.allclose(grad[:, 1:], 0.0)


class TestClassificationLoss:
    def test_perfect_prediction_zero_loss(self):
        logits = np.array([50.0, -50.0])
        labels = np.array([1.0, 0.0])
        loss, grad_logits, _ = classification_loss(logits, labels)
        assert loss < 1e-10
        assert np.allclose(grad_logits, 0.0, atol=1e-10)

    def test_loss_is_mean_absolute_gap(self):
        logits = np.zeros(2)  # sigmoid = 0.5
        labels = np.array([1.0, 0.0])
        loss, _, _ = classification_loss(logits, labels)
        assert loss == pytest.approx(0.5)

    def test_gradient_signs(self):
        logits = np.zeros(2)
        labels = np.array([1.0, 0.0])
        _, grad_logits, grad_labels = classification_loss(logits, labels)
        # label=1, p=0.5: raise the logit (descent: negative gradient).
        assert grad_logits[0, 0] < 0
        assert grad_logits[1, 0] > 0
        # Moving the synthesized label toward the prediction lowers loss.
        assert grad_labels[0] > 0
        assert grad_labels[1] < 0

    def test_logit_gradient_numerical(self, rng):
        logits = rng.standard_normal(4)
        labels = (rng.random(4) > 0.5).astype(float)
        _, grad, _ = classification_loss(logits, labels)
        eps = 1e-6
        for i in range(4):
            bumped = logits.copy()
            bumped[i] += eps
            plus, _, _ = classification_loss(bumped, labels)
            bumped[i] -= 2 * eps
            minus, _, _ = classification_loss(bumped, labels)
            assert np.isclose(grad[i, 0], (plus - minus) / (2 * eps), atol=1e-5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            classification_loss(np.zeros(2), np.zeros(3))
