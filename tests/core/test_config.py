"""TableGanConfig and the paper's privacy presets."""

import numpy as np
import pytest

from repro.core.config import (
    TableGanConfig,
    dcgan_baseline,
    high_privacy,
    low_privacy,
    mid_privacy,
)


class TestPresets:
    def test_paper_delta_values(self):
        """§5.1.5: low = 0/0, mid = 0.1/0.1, high = 0.2/0.2."""
        assert (low_privacy().delta_mean, low_privacy().delta_sd) == (0.0, 0.0)
        assert (mid_privacy().delta_mean, mid_privacy().delta_sd) == (0.1, 0.1)
        assert (high_privacy().delta_mean, high_privacy().delta_sd) == (0.2, 0.2)

    def test_dcgan_baseline_disables_aux_losses(self):
        config = dcgan_baseline()
        assert not config.use_info_loss
        assert not config.use_classifier

    def test_presets_accept_overrides(self):
        config = high_privacy(epochs=3, batch_size=16)
        assert config.epochs == 3
        assert config.delta_mean == 0.2

    def test_paper_defaults(self):
        config = TableGanConfig()
        assert config.epochs == 25          # §5.1.5
        assert config.latent_dim == 100     # Figure 2
        assert config.ewma_weight == 0.99   # §4.3
        assert config.lr == 2e-4            # DCGAN Adam
        assert config.beta1 == 0.5


class TestValidation:
    def test_negative_deltas_rejected(self):
        with pytest.raises(ValueError):
            TableGanConfig(delta_mean=-0.1)
        with pytest.raises(ValueError):
            TableGanConfig(delta_sd=-0.1)

    def test_non_positive_schedule_rejected(self):
        with pytest.raises(ValueError):
            TableGanConfig(epochs=0)
        with pytest.raises(ValueError):
            TableGanConfig(batch_size=0)
        with pytest.raises(ValueError):
            TableGanConfig(latent_dim=0)
        with pytest.raises(ValueError):
            TableGanConfig(generator_updates=0)

    def test_ewma_weight_range(self):
        with pytest.raises(ValueError):
            TableGanConfig(ewma_weight=1.0)

    def test_with_overrides_returns_new_config(self):
        base = TableGanConfig()
        other = base.with_overrides(epochs=7)
        assert base.epochs == 25
        assert other.epochs == 7


class TestComputeDtype:
    def test_default_is_float32(self):
        config = TableGanConfig()
        assert config.dtype == "float32"
        assert config.np_dtype == np.float32

    def test_float64_accepted_and_normalized(self):
        assert TableGanConfig(dtype="float64").dtype == "float64"
        assert TableGanConfig(dtype=np.float64).dtype == "float64"
        assert TableGanConfig(dtype=np.float32).np_dtype == np.float32

    def test_other_dtypes_rejected(self):
        with pytest.raises(ValueError):
            TableGanConfig(dtype="float16")
        with pytest.raises(ValueError):
            TableGanConfig(dtype="int32")
        with pytest.raises(ValueError):
            TableGanConfig(dtype=object())
