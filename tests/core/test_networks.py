"""Generator/discriminator/classifier architectures (Figure 2)."""

import numpy as np
import pytest

from repro.core.networks import (
    FEATURE_LAYER,
    build_classifier,
    build_discriminator,
    build_generator,
    feature_width,
)


class TestGenerator:
    @pytest.mark.parametrize("side", [4, 8, 16])
    def test_output_shape(self, side, rng):
        gen = build_generator(side, latent_dim=100, base_channels=8, rng=0)
        z = rng.uniform(-1, 1, (3, 100))
        out = gen.forward(z)
        assert out.shape == (3, 1, side, side)

    def test_output_in_tanh_range(self, rng):
        gen = build_generator(8, latent_dim=50, base_channels=8, rng=0)
        out = gen.forward(rng.uniform(-1, 1, (4, 50)))
        assert out.min() >= -1.0 and out.max() <= 1.0

    def test_rejects_non_power_of_two_side(self):
        with pytest.raises(ValueError, match="power of two"):
            build_generator(12, 100, 8)
        with pytest.raises(ValueError, match="power of two"):
            build_generator(2, 100, 8)


class TestDiscriminator:
    @pytest.mark.parametrize("side", [4, 8, 16])
    def test_logit_output(self, side, rng):
        disc = build_discriminator(side, base_channels=8, rng=0)
        x = rng.uniform(-1, 1, (5, 1, side, side))
        out = disc.forward(x)
        assert out.shape == (5, 1)

    @pytest.mark.parametrize("side", [4, 8, 16])
    def test_feature_layer_width(self, side, rng):
        disc = build_discriminator(side, base_channels=8, rng=0)
        disc.forward(rng.uniform(-1, 1, (2, 1, side, side)))
        feats = disc.activation(FEATURE_LAYER)
        assert feats.shape == (2, feature_width(side, 8))

    def test_figure2_ladder_16(self, rng):
        """d=16 with base 64: 16x16x1 -> 8x8x64 -> 4x4x128 -> 2x2x256 (Figure 2)."""
        assert feature_width(16, 64) == 256 * 2 * 2

    def test_feature_gradient_reaches_input(self, rng):
        disc = build_discriminator(8, base_channels=8, rng=0)
        x = rng.uniform(-1, 1, (3, 1, 8, 8))
        disc.forward(x)
        feats = disc.activation(FEATURE_LAYER)
        grad = disc.backward_from(FEATURE_LAYER, np.ones_like(feats))
        assert grad.shape == x.shape
        assert np.any(grad != 0)


class TestClassifier:
    def test_same_architecture_as_discriminator(self, rng):
        """§4.1.3: C has the same network architecture as D."""
        disc = build_discriminator(8, base_channels=8, rng=0)
        clf = build_classifier(8, base_channels=8, rng=1)
        assert [type(a).__name__ for a in disc] == [type(a).__name__ for a in clf]
        assert [p.shape for p in disc.parameters()] == [p.shape for p in clf.parameters()]

    def test_independent_weights(self):
        disc = build_discriminator(8, base_channels=8, rng=0)
        clf = build_classifier(8, base_channels=8, rng=1)
        assert not np.allclose(disc.parameters()[0].data, clf.parameters()[0].data)


class TestEndToEndGradientFlow:
    def test_generator_receives_gradient_through_discriminator(self, rng):
        gen = build_generator(8, latent_dim=20, base_channels=8, rng=0)
        disc = build_discriminator(8, base_channels=8, rng=1)
        z = rng.uniform(-1, 1, (4, 20))
        fake = gen.forward(z)
        logits = disc.forward(fake)
        disc.zero_grad()
        grad_at_fake = disc.backward(np.ones_like(logits))
        gen.zero_grad()
        gen.backward(grad_at_fake)
        assert any(np.any(p.grad != 0) for p in gen.parameters())
