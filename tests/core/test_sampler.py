"""RecordSampler: batching, ranges, and determinism."""

import numpy as np
import pytest

from repro.core.sampler import RecordSampler


@pytest.fixture()
def sampler(trained_gan):
    return RecordSampler(
        trained_gan.generator_,
        trained_gan.codec_,
        trained_gan.matrixizer_,
        trained_gan.config.latent_dim,
    )


class TestSampling:
    def test_matrices_shape_and_range(self, sampler):
        mats = sampler.sample_matrices(10, rng=np.random.default_rng(0))
        assert mats.shape[0] == 10
        assert mats.min() >= -1.0 and mats.max() <= 1.0

    def test_batched_generation_matches_single_shot(self, sampler):
        """Batching is an implementation detail: same stream, same records."""
        a = sampler.sample_records(50, rng=np.random.default_rng(3))
        b_parts = RecordSampler(
            sampler.generator, sampler.codec, sampler.matrixizer,
            sampler.latent_dim,
        ).sample_matrices(50, rng=np.random.default_rng(3), batch_size=7)
        b = sampler.matrixizer.to_records(b_parts)
        assert np.allclose(a, b)

    def test_table_output(self, sampler, adult_bundle):
        table = sampler.sample_table(20, rng=np.random.default_rng(1))
        assert table.n_rows == 20
        assert table.schema == adult_bundle.train.schema

    def test_rejects_non_positive_n(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample_matrices(0)

    def test_rejects_bad_latent_dim(self, trained_gan):
        with pytest.raises(ValueError):
            RecordSampler(
                trained_gan.generator_, trained_gan.codec_,
                trained_gan.matrixizer_, 0,
            )

    def test_constructor_batch_size_is_the_default(self, trained_gan):
        small = RecordSampler(
            trained_gan.generator_, trained_gan.codec_,
            trained_gan.matrixizer_, trained_gan.config.latent_dim,
            batch_size=4,
        )
        a = small.sample_records(10, rng=np.random.default_rng(5))
        b = small.sample_records(10, rng=np.random.default_rng(5), batch_size=256)
        assert np.allclose(a, b)
        with pytest.raises(ValueError):
            RecordSampler(
                trained_gan.generator_, trained_gan.codec_,
                trained_gan.matrixizer_, trained_gan.config.latent_dim,
                batch_size=0,
            )


class TestInferenceMode:
    """Sampling must run the generator in eval mode (BatchNorm running stats)."""

    def _batchnorms(self, generator):
        from repro.nn import BatchNorm

        return [layer for layer in generator if isinstance(layer, BatchNorm)]

    def test_sampling_does_not_perturb_running_stats(self, sampler):
        bns = self._batchnorms(sampler.generator)
        assert bns, "generator should contain BatchNorm layers"
        before = [(bn.running_mean.copy(), bn.running_var.copy()) for bn in bns]
        sampler.sample_matrices(32, rng=np.random.default_rng(0))
        for bn, (mean, var) in zip(bns, before):
            assert np.array_equal(bn.running_mean, mean)
            assert np.array_equal(bn.running_var, var)

    def test_sampling_reads_running_stats(self, sampler):
        """Perturbing the running statistics must change sampled output."""
        baseline = sampler.sample_matrices(8, rng=np.random.default_rng(2))
        bn = self._batchnorms(sampler.generator)[0]
        saved = bn.running_mean.copy()
        try:
            bn.running_mean = bn.running_mean + 0.5
            shifted = sampler.sample_matrices(8, rng=np.random.default_rng(2))
        finally:
            bn.running_mean = saved
        assert not np.allclose(baseline, shifted)

    def test_repeat_sampling_is_deterministic(self, sampler):
        """Eval-mode forward has no batch-statistics feedback: same seed,
        same rows, regardless of what was sampled in between."""
        first = sampler.sample_records(12, rng=np.random.default_rng(9))
        sampler.sample_records(33, rng=np.random.default_rng(1))
        again = sampler.sample_records(12, rng=np.random.default_rng(9))
        assert np.array_equal(first, again)
