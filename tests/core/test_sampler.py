"""RecordSampler: batching, ranges, and determinism."""

import numpy as np
import pytest

from repro.core.sampler import RecordSampler


@pytest.fixture()
def sampler(trained_gan):
    return RecordSampler(
        trained_gan.generator_,
        trained_gan.codec_,
        trained_gan.matrixizer_,
        trained_gan.config.latent_dim,
    )


class TestSampling:
    def test_matrices_shape_and_range(self, sampler):
        mats = sampler.sample_matrices(10, rng=np.random.default_rng(0))
        assert mats.shape[0] == 10
        assert mats.min() >= -1.0 and mats.max() <= 1.0

    def test_batched_generation_matches_single_shot(self, sampler):
        """Batching is an implementation detail: same stream, same records."""
        a = sampler.sample_records(50, rng=np.random.default_rng(3))
        b_parts = RecordSampler(
            sampler.generator, sampler.codec, sampler.matrixizer,
            sampler.latent_dim,
        ).sample_matrices(50, rng=np.random.default_rng(3), batch_size=7)
        b = sampler.matrixizer.to_records(b_parts)
        assert np.allclose(a, b)

    def test_table_output(self, sampler, adult_bundle):
        table = sampler.sample_table(20, rng=np.random.default_rng(1))
        assert table.n_rows == 20
        assert table.schema == adult_bundle.train.schema

    def test_rejects_non_positive_n(self, sampler):
        with pytest.raises(ValueError):
            sampler.sample_matrices(0)

    def test_rejects_bad_latent_dim(self, trained_gan):
        with pytest.raises(ValueError):
            RecordSampler(
                trained_gan.generator_, trained_gan.codec_,
                trained_gan.matrixizer_, 0,
            )
