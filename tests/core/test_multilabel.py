"""The §4.2.3 multi-label classifier extension."""

import numpy as np
import pytest

from repro import TableGAN, TableGanConfig
from repro.core.losses import classification_loss
from repro.core.networks import build_classifier


class TestMultiHeadClassifier:
    def test_head_count(self, rng):
        clf = build_classifier(8, base_channels=8, rng=0, n_labels=3)
        out = clf.forward(rng.uniform(-1, 1, (4, 1, 8, 8)))
        assert out.shape == (4, 3)

    def test_heads_share_trunk(self):
        """Only the final dense layer grows with the label count."""
        single = build_classifier(8, base_channels=8, rng=0, n_labels=1)
        multi = build_classifier(8, base_channels=8, rng=0, n_labels=3)
        shapes_single = [p.shape for p in single.parameters()]
        shapes_multi = [p.shape for p in multi.parameters()]
        assert shapes_single[:-2] == shapes_multi[:-2]
        assert shapes_multi[-2][-1] == 3  # final weight: (features, 3)


class TestMultiLabelLoss:
    def test_2d_shapes_supported(self, rng):
        logits = rng.standard_normal((6, 3))
        labels = (rng.random((6, 3)) > 0.5).astype(float)
        loss, grad_logits, grad_labels = classification_loss(logits, labels)
        assert np.isfinite(loss)
        assert grad_logits.shape == (6, 3)
        assert grad_labels.shape == (6, 3)

    def test_multilabel_gradient_numerical(self, rng):
        logits = rng.standard_normal((3, 2))
        labels = (rng.random((3, 2)) > 0.5).astype(float)
        _, grad, _ = classification_loss(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(2):
                bumped = logits.copy()
                bumped[i, j] += eps
                plus, _, _ = classification_loss(bumped, labels)
                bumped[i, j] -= 2 * eps
                minus, _, _ = classification_loss(bumped, labels)
                assert np.isclose(grad[i, j], (plus - minus) / (2 * eps), atol=1e-5)


class TestMultiLabelTraining:
    def test_fit_with_two_label_columns(self, adult_bundle):
        """Train with the schema label plus a second binary column."""
        config = TableGanConfig(
            epochs=2, batch_size=32, base_channels=8, seed=0,
            label_columns=("long_hours", "sex"),
        )
        gan = TableGAN(config)
        gan.fit(adult_bundle.train)
        # Final classifier head count matches the label count.
        assert gan.classifier_.parameters()[-2].shape[-1] == 2
        syn = gan.sample(30)
        assert syn.n_rows == 30

    def test_empty_label_columns_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            TableGanConfig(label_columns=())

    def test_history_records_class_loss(self, adult_bundle):
        config = TableGanConfig(
            epochs=1, batch_size=32, base_channels=8, seed=0,
            label_columns=("long_hours", "sex"),
        )
        gan = TableGAN(config)
        gan.fit(adult_bundle.train)
        assert np.isfinite(gan.history_.epochs[0].c_loss)
        assert gan.history_.epochs[0].c_loss > 0.0
