"""UpdateSchedule: the Algorithm 2 interleave as an explicit contract.

Two layers of pinning:

* structural — ``for_counts``/``from_config`` build the documented op
  tuples and ``rounds()`` derives the data-parallel synchronization
  grouping;
* behavioural — a recording trainer asserts the executor dispatches the
  exact op sequence for several (d_steps, g_steps, epochs, batches)
  configurations, and the refactored schedule-driven executor replays the
  seed interleave bit-exactly by default.
"""

import numpy as np
import pytest

from repro.core.config import TableGanConfig
from repro.core.losses import FeatureStats
from repro.core.networks import build_classifier, build_discriminator, build_generator
from repro.core.schedule import OPS, UpdateSchedule
from repro.core.trainer import TableGanTrainer
from repro.nn import state_dict


def tiny_config(**overrides):
    defaults = dict(
        epochs=1, batch_size=16, latent_dim=10, base_channels=8, seed=0,
        generator_updates=1,
    )
    defaults.update(overrides)
    return TableGanConfig(**defaults)


def make_trainer(config, schedule=None, with_classifier=True,
                 cls=TableGanTrainer):
    gen = build_generator(4, config.latent_dim, config.base_channels, rng=0)
    disc = build_discriminator(4, config.base_channels, rng=1)
    clf = build_classifier(4, config.base_channels, rng=2) if with_classifier else None
    cfg = config if with_classifier else config.with_overrides(use_classifier=False)
    return cls(gen, disc, clf, cfg,
               label_cell=(0, 3) if with_classifier else None,
               schedule=schedule)


def toy_matrices(n=32, side=4, seed=5):
    rng = np.random.default_rng(seed)
    mats = rng.uniform(-0.5, 0.5, (n, 1, side, side))
    mats[:, 0, 0, 3] = np.sign(mats[:, 0, 0, 0])
    return mats


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="at least one op"):
            UpdateSchedule(())

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown schedule ops"):
            UpdateSchedule(("d", "warp", "g"))

    def test_ops_normalized_to_tuple(self):
        schedule = UpdateSchedule(["d", "g"])
        assert schedule.ops == ("d", "g")

    def test_frozen_and_hashable(self):
        schedule = UpdateSchedule(("d", "g"))
        with pytest.raises(AttributeError):
            schedule.ops = ("g",)
        assert hash(UpdateSchedule(("d", "g"))) == hash(schedule)

    def test_all_ops_are_valid(self):
        assert UpdateSchedule(OPS).ops == OPS


class TestFactories:
    def test_seed_interleave(self):
        assert UpdateSchedule.for_counts().ops == ("d", "c", "stats", "g")

    def test_d_and_g_multiplicity(self):
        schedule = UpdateSchedule.for_counts(d_steps=2, g_steps=3)
        assert schedule.ops == ("d", "d", "c", "stats", "g", "g", "g")
        assert schedule.d_steps == 2
        assert schedule.g_steps == 3

    def test_optional_blocks(self):
        assert UpdateSchedule.for_counts(classifier=False).ops == (
            "d", "stats", "g"
        )
        assert UpdateSchedule.for_counts(refresh_stats=False).ops == (
            "d", "c", "g"
        )

    def test_from_config_uses_generator_updates(self):
        schedule = UpdateSchedule.from_config(tiny_config(generator_updates=3))
        assert schedule.ops == ("d", "c", "stats", "g", "g", "g")

    @pytest.mark.parametrize("kwargs", [dict(d_steps=0), dict(g_steps=0)])
    def test_counts_validated(self, kwargs):
        with pytest.raises(ValueError):
            UpdateSchedule.for_counts(**kwargs)


class TestRounds:
    def test_default_grouping(self):
        assert UpdateSchedule(("d", "c", "stats", "g")).rounds() == (
            ("d", "c"), ("stats",), ("g",)
        )

    def test_adjacent_d_ops_do_not_merge(self):
        # The second d reads the weights the first just wrote; it must be
        # its own synchronization round.
        assert UpdateSchedule(("d", "d", "c", "stats", "g", "g")).rounds() == (
            ("d",), ("d", "c"), ("stats",), ("g",), ("g",)
        )

    def test_d_without_following_c_is_singleton(self):
        assert UpdateSchedule(("d", "stats", "g")).rounds() == (
            ("d",), ("stats",), ("g",)
        )

    def test_rounds_cover_ops_in_order(self):
        for ops in [("d", "c", "stats", "g"), ("g", "d", "c"), ("c", "d"),
                    ("d", "d", "d"), ("stats", "g", "g")]:
            schedule = UpdateSchedule(ops)
            flattened = tuple(op for r in schedule.rounds() for op in r)
            assert flattened == schedule.ops


class RecordingTrainer(TableGanTrainer):
    """Real compute, but every dispatched op appends to ``self.calls``."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls = []

    def _update_discriminator(self, real, fake):
        self.calls.append("d")
        return super()._update_discriminator(real, fake)

    def _update_classifier(self, real):
        self.calls.append("c")
        return super()._update_classifier(real)

    def _update_generator(self, fake, rng, d_forward_cached=False):
        self.calls.append("g")
        return super()._update_generator(fake, rng,
                                         d_forward_cached=d_forward_cached)


class TestExecutorDispatch:
    """The trainer executes exactly schedule.ops, once per batch."""

    @pytest.mark.parametrize("d_steps,g_steps,epochs,n_rows", [
        (1, 1, 1, 32),   # seed interleave, 2 batches
        (1, 3, 1, 16),   # extra generator steps
        (2, 2, 2, 32),   # d_iters > 1 across epochs
    ])
    def test_exact_sequence(self, d_steps, g_steps, epochs, n_rows,
                            monkeypatch):
        config = tiny_config(epochs=epochs)
        schedule = UpdateSchedule.for_counts(d_steps=d_steps, g_steps=g_steps)
        trainer = make_trainer(config, schedule=schedule, cls=RecordingTrainer)
        stats_calls = []
        original = FeatureStats.update_real

        def recording_update(self, features):
            stats_calls.append(len(trainer.calls))
            return original(self, features)

        monkeypatch.setattr(FeatureStats, "update_real", recording_update)
        trainer.train(toy_matrices(n=n_rows), rng=3)

        n_batches = epochs * (n_rows // config.batch_size)
        per_batch = ["d"] * d_steps + ["c"] + ["g"] * g_steps
        assert trainer.calls == per_batch * n_batches
        # One statistics refresh per batch, dispatched after the d/c block
        # (d_steps + 1 recorded calls into each batch).
        per_batch_len = len(per_batch)
        assert stats_calls == [
            batch * per_batch_len + d_steps + 1 for batch in range(n_batches)
        ]

    def test_classifier_disabled_skips_c_compute(self):
        config = tiny_config(use_classifier=False)
        trainer = make_trainer(config, with_classifier=False,
                               cls=RecordingTrainer)
        trainer.train(toy_matrices(), rng=3)
        # "c" ops still dispatch (the schedule keeps its shape) but the
        # update is the documented no-op.
        assert trainer.calls.count("c") == trainer.calls.count("d")

    def test_custom_schedule_changes_dispatch(self):
        config = tiny_config()
        trainer = make_trainer(
            config, schedule=UpdateSchedule(("g", "d", "c")),
            cls=RecordingTrainer,
        )
        trainer.train(toy_matrices(n=16), rng=3)
        assert trainer.calls == ["g", "d", "c"]


class TestSeedReplay:
    def test_default_schedule_is_bit_exact_with_explicit_seed_schedule(self):
        """schedule=None and the explicit seed interleave are the same run."""
        config = tiny_config(epochs=2, generator_updates=2)
        matrices = toy_matrices(n=48)

        default = make_trainer(config, schedule=None)
        history_default = default.train(matrices, rng=7)

        explicit = make_trainer(
            config, schedule=UpdateSchedule(("d", "c", "stats", "g", "g"))
        )
        history_explicit = explicit.train(matrices, rng=7)

        for net_a, net_b in (
            (default.generator, explicit.generator),
            (default.discriminator, explicit.discriminator),
            (default.classifier, explicit.classifier),
        ):
            expected, actual = state_dict(net_a), state_dict(net_b)
            assert set(expected) == set(actual)
            for key in expected:
                assert np.array_equal(expected[key], actual[key]), key
        assert history_default.epochs == history_explicit.epochs

    def test_trainer_defaults_to_config_schedule(self):
        config = tiny_config(generator_updates=2)
        trainer = make_trainer(config)
        assert trainer.schedule == UpdateSchedule(("d", "c", "stats", "g", "g"))
