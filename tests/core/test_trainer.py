"""Algorithm 2 trainer mechanics."""

import numpy as np
import pytest

from repro.core.config import TableGanConfig
from repro.core.networks import build_classifier, build_discriminator, build_generator
from repro.core.trainer import TableGanTrainer


def tiny_config(**overrides):
    defaults = dict(
        epochs=2, batch_size=16, latent_dim=10, base_channels=8, seed=0,
        generator_updates=1,
    )
    defaults.update(overrides)
    return TableGanConfig(**defaults)


def make_trainer(config, side=4, with_classifier=True):
    gen = build_generator(side, config.latent_dim, config.base_channels, rng=0)
    disc = build_discriminator(side, config.base_channels, rng=1)
    clf = build_classifier(side, config.base_channels, rng=2) if with_classifier else None
    label_cell = (0, 3) if with_classifier else None
    cfg = config if with_classifier else config.with_overrides(use_classifier=False)
    return TableGanTrainer(gen, disc, clf, cfg, label_cell=label_cell), gen, disc, clf


def toy_matrices(rng, n=64, side=4):
    """Records with structure: cell (0,0) ~ U(-1,1), label cell (0,3) = sign."""
    mats = rng.uniform(-0.5, 0.5, (n, 1, side, side))
    mats[:, 0, 0, 3] = np.sign(mats[:, 0, 0, 0])
    return mats


class TestTrainingLoop:
    def test_produces_history(self, rng):
        config = tiny_config()
        trainer, *_ = make_trainer(config)
        history = trainer.train(toy_matrices(rng), rng=rng)
        assert len(history.epochs) == config.epochs
        for epoch in history.epochs:
            for value in (epoch.d_loss, epoch.g_adv_loss, epoch.g_info_loss,
                          epoch.g_class_loss, epoch.c_loss):
                assert np.isfinite(value)

    def test_updates_all_networks(self, rng):
        config = tiny_config(epochs=1)
        trainer, gen, disc, clf = make_trainer(config)
        before = [
            [p.data.copy() for p in net.parameters()]
            for net in (gen, disc, clf)
        ]
        trainer.train(toy_matrices(rng), rng=rng)
        for net, snapshots in zip((gen, disc, clf), before):
            changed = any(
                not np.allclose(p.data, old)
                for p, old in zip(net.parameters(), snapshots)
            )
            assert changed, f"{net} parameters did not move"

    def test_epoch_callback_invoked(self, rng):
        config = tiny_config(epochs=3)
        trainer, *_ = make_trainer(config)
        seen = []
        trainer.train(toy_matrices(rng), rng=rng,
                      on_epoch_end=lambda i, losses: seen.append(i))
        assert seen == [0, 1, 2]

    def test_without_classifier(self, rng):
        config = tiny_config(use_classifier=False)
        trainer, *_ = make_trainer(config, with_classifier=False)
        history = trainer.train(toy_matrices(rng), rng=rng)
        assert all(e.c_loss == 0.0 for e in history.epochs)
        assert all(e.g_class_loss == 0.0 for e in history.epochs)

    def test_without_info_loss(self, rng):
        config = tiny_config(use_info_loss=False)
        trainer, *_ = make_trainer(config)
        history = trainer.train(toy_matrices(rng), rng=rng)
        assert all(e.g_info_loss == 0.0 for e in history.epochs)

    def test_final_stats_recorded(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        history = trainer.train(toy_matrices(rng), rng=rng)
        assert history.final_l_mean >= 0.0
        assert history.final_l_sd >= 0.0

    def test_deterministic_given_seeds(self, rng):
        mats = toy_matrices(np.random.default_rng(5))
        h1 = make_trainer(tiny_config())[0].train(mats, rng=np.random.default_rng(1))
        h2 = make_trainer(tiny_config())[0].train(mats, rng=np.random.default_rng(1))
        assert h1.epochs[-1].d_loss == pytest.approx(h2.epochs[-1].d_loss)


class TestValidation:
    def test_rejects_bad_matrix_shape(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        with pytest.raises(ValueError, match="expected"):
            trainer.train(rng.uniform(-1, 1, (10, 4, 4)))

    def test_rejects_too_few_records(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        with pytest.raises(ValueError, match="at least 2"):
            trainer.train(rng.uniform(-1, 1, (1, 1, 4, 4)))

    def test_classifier_requires_label_cell(self):
        config = tiny_config()
        gen = build_generator(4, config.latent_dim, config.base_channels, rng=0)
        disc = build_discriminator(4, config.base_channels, rng=1)
        clf = build_classifier(4, config.base_channels, rng=2)
        with pytest.raises(ValueError, match="label_cell"):
            TableGanTrainer(gen, disc, clf, config, label_cell=None)

    def test_batch_larger_than_data_raises(self, rng):
        trainer, *_ = make_trainer(tiny_config(batch_size=500, epochs=1))
        # batch is clamped to n, so this should actually run fine.
        history = trainer.train(toy_matrices(rng, n=32), rng=rng)
        assert len(history.epochs) == 1


class TestLabelHandling:
    def test_remove_label_zeroes_cell(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        mats = toy_matrices(rng, n=8)
        removed = trainer._remove_label(mats)
        assert np.all(removed[:, 0, 0, 3] == 0.0)
        # Original untouched; other cells preserved.
        assert np.any(mats[:, 0, 0, 3] != 0.0)
        assert np.allclose(removed[:, 0, 1:, :], mats[:, 0, 1:, :])

    def test_labels01_maps_range(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        mats = toy_matrices(rng, n=8)
        mats[:, 0, 0, 3] = np.array([-1, 1, 0, -1, 1, 0, 1, -1])
        labels = trainer._labels01(mats)
        assert np.allclose(labels, [0, 1, 0.5, 0, 1, 0.5, 1, 0])

    def test_latent_in_unit_hypercube(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        z = trainer.sample_latent(100, rng)
        assert z.shape == (100, 10)
        assert z.min() >= -1.0 and z.max() <= 1.0


class TestComputeDtype:
    def test_default_float32_end_to_end(self, rng):
        """Default config trains entirely in float32 (no silent upcasts)."""
        config = tiny_config(epochs=1)
        assert config.np_dtype == np.float32
        trainer, gen, disc, clf = make_trainer(config)
        # make_trainer builds float64 nets; rebuild at the config dtype.
        from repro.core.networks import (
            build_classifier, build_discriminator, build_generator,
        )
        gen = build_generator(4, config.latent_dim, config.base_channels,
                              rng=0, dtype=np.float32)
        disc = build_discriminator(4, config.base_channels, rng=1, dtype=np.float32)
        clf = build_classifier(4, config.base_channels, rng=2, dtype=np.float32)
        trainer = TableGanTrainer(gen, disc, clf, config, label_cell=(0, 3))
        trainer.train(toy_matrices(rng), rng=rng)
        for net in (gen, disc, clf):
            for p in net.parameters():
                assert p.data.dtype == np.float32
                assert p.grad.dtype == np.float32

    def test_latent_matches_compute_dtype(self, rng):
        trainer, *_ = make_trainer(tiny_config())
        assert trainer.sample_latent(4, rng).dtype == np.float32
        trainer64, *_ = make_trainer(tiny_config(dtype="float64"))
        assert trainer64.sample_latent(4, rng).dtype == np.float64

    def test_float64_mode_reproduces_seed_numerics_shape(self, rng):
        config = tiny_config(epochs=1, dtype="float64")
        trainer, gen, *_ = make_trainer(config)
        trainer.train(toy_matrices(rng), rng=rng)
        assert all(p.data.dtype == np.float64 for p in gen.parameters())
