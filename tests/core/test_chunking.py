"""Chunked training (§4.4)."""

import numpy as np
import pytest

from repro import ChunkedTableGAN, low_privacy


@pytest.fixture(scope="module")
def chunked(adult_bundle_module):
    config = low_privacy(epochs=2, batch_size=32, base_channels=8, seed=0)
    model = ChunkedTableGAN(config, n_chunks=2)
    model.fit(adult_bundle_module.train)
    return model


@pytest.fixture(scope="module")
def adult_bundle_module():
    from repro.data.datasets import load_dataset

    return load_dataset("adult", rows=300, seed=55)


class TestChunkedTableGAN:
    def test_trains_one_model_per_chunk(self, chunked):
        assert len(chunked.models_) == 2
        assert sum(chunked.chunk_sizes_) == 240  # 300 * 0.8 train rows

    def test_sample_merges_chunks(self, chunked, adult_bundle_module):
        syn = chunked.sample(100)
        assert syn.n_rows == 100
        assert syn.schema == adult_bundle_module.train.schema

    def test_total_training_time(self, chunked):
        assert chunked.train_seconds_ > 0

    def test_rejects_bad_chunk_count(self):
        with pytest.raises(ValueError):
            ChunkedTableGAN(n_chunks=0)

    def test_rejects_too_small_table(self, adult_bundle_module):
        model = ChunkedTableGAN(low_privacy(epochs=1), n_chunks=200)
        with pytest.raises(ValueError, match="too few"):
            model.fit(adult_bundle_module.train)

    def test_unfitted_sample_raises(self):
        with pytest.raises(RuntimeError):
            ChunkedTableGAN(n_chunks=2).sample(5)

    def test_sample_count_validation(self, chunked):
        with pytest.raises(ValueError):
            chunked.sample(0)
