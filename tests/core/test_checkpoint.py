"""Crash-safe checkpoints: bit-exact resume, rotation, corruption fallback."""

import numpy as np
import pytest

from repro.core.checkpoint import (
    CheckpointError,
    TrainerCheckpointer,
    TrainingInterrupted,
)
from repro.core.config import low_privacy
from repro.core.networks import build_discriminator, build_generator
from repro.core.trainer import TableGanTrainer
from repro.nn import state_dict

SIDE = 8
N_ROWS = 64
DATA_SEED = 0
TRAIN_SEED = 42


def tiny_config(**overrides):
    base = dict(epochs=4, batch_size=16, base_channels=8, seed=3,
                use_classifier=False)
    base.update(overrides)
    return low_privacy(**base)


def make_matrices():
    rng = np.random.default_rng(DATA_SEED)
    return rng.uniform(-1.0, 1.0, size=(N_ROWS, 1, SIDE, SIDE))


def make_trainer(config=None):
    config = config or tiny_config()
    rng = np.random.default_rng(99)
    generator = build_generator(SIDE, config.latent_dim, config.base_channels,
                                rng)
    discriminator = build_discriminator(SIDE, config.base_channels, rng)
    return TableGanTrainer(generator, discriminator, None, config)


def stop_after(checkpointer, n_batches):
    """Patch ``on_batch`` to request a stop on its ``n_batches``-th call."""
    original = checkpointer.on_batch
    count = [0]

    def hooked(*args, **kwargs):
        count[0] += 1
        if count[0] == n_batches:
            checkpointer.request_stop()
        return original(*args, **kwargs)

    checkpointer.on_batch = hooked


@pytest.fixture(scope="module")
def baseline():
    """One uninterrupted run: (final generator weights, history losses)."""
    trainer = make_trainer()
    history = trainer.train(make_matrices(), rng=TRAIN_SEED)
    return state_dict(trainer.generator), [e.d_loss for e in history.epochs]


def assert_weights_identical(expected, actual):
    assert set(expected) == set(actual)
    for key in expected:
        assert np.array_equal(expected[key], actual[key]), key


class TestResume:
    def test_mid_epoch_resume_is_bit_exact(self, tmp_path, baseline):
        expected_weights, expected_losses = baseline
        matrices = make_matrices()

        interrupted = TrainerCheckpointer(tmp_path, every_batches=1)
        stop_after(interrupted, 5)  # epoch 1, mid-epoch
        trainer = make_trainer()
        with pytest.raises(TrainingInterrupted) as excinfo:
            trainer.train(matrices, rng=TRAIN_SEED, checkpointer=interrupted)
        assert excinfo.value.epoch == 1
        assert excinfo.value.batch_start > 0
        assert excinfo.value.path == interrupted.latest_path

        resumed = make_trainer()
        history = resumed.train(matrices, rng=TRAIN_SEED,
                                checkpointer=TrainerCheckpointer(tmp_path))
        assert_weights_identical(expected_weights, state_dict(resumed.generator))
        assert [e.d_loss for e in history.epochs] == expected_losses

    def test_epoch_boundary_resume_is_bit_exact(self, tmp_path, baseline):
        expected_weights, expected_losses = baseline
        matrices = make_matrices()

        interrupted = TrainerCheckpointer(tmp_path)  # epoch-boundary saves only
        trainer = make_trainer()

        def stop_soon(epoch, losses):
            if epoch == 1:
                interrupted.request_stop()

        with pytest.raises(TrainingInterrupted) as excinfo:
            trainer.train(matrices, rng=TRAIN_SEED, checkpointer=interrupted,
                          on_epoch_end=stop_soon)
        assert excinfo.value.epoch == 2
        assert excinfo.value.batch_start == 0

        resumed = make_trainer()
        history = resumed.train(matrices, rng=TRAIN_SEED,
                                checkpointer=TrainerCheckpointer(tmp_path))
        assert_weights_identical(expected_weights, state_dict(resumed.generator))
        assert [e.d_loss for e in history.epochs] == expected_losses

    def test_double_interruption_still_bit_exact(self, tmp_path, baseline):
        expected_weights, _ = baseline
        matrices = make_matrices()

        for stop_at in (3, 4):  # two successive SIGTERMs
            checkpointer = TrainerCheckpointer(tmp_path, every_batches=1)
            stop_after(checkpointer, stop_at)
            with pytest.raises(TrainingInterrupted):
                make_trainer().train(matrices, rng=TRAIN_SEED,
                                     checkpointer=checkpointer)

        resumed = make_trainer()
        resumed.train(matrices, rng=TRAIN_SEED,
                      checkpointer=TrainerCheckpointer(tmp_path))
        assert_weights_identical(expected_weights, state_dict(resumed.generator))

    def test_completed_run_with_checkpointer_matches_baseline(self, tmp_path,
                                                              baseline):
        expected_weights, _ = baseline
        trainer = make_trainer()
        checkpointer = TrainerCheckpointer(tmp_path, every_batches=2)
        trainer.train(make_matrices(), rng=TRAIN_SEED, checkpointer=checkpointer)
        assert_weights_identical(expected_weights, state_dict(trainer.generator))
        assert checkpointer.saves > 0
        assert checkpointer.total_save_s > 0.0


class TestDurability:
    def interrupt(self, tmp_path, stop_at=5):
        checkpointer = TrainerCheckpointer(tmp_path, every_batches=1)
        stop_after(checkpointer, stop_at)
        with pytest.raises(TrainingInterrupted):
            make_trainer().train(make_matrices(), rng=TRAIN_SEED,
                                 checkpointer=checkpointer)
        return checkpointer

    def test_corrupt_latest_falls_back_to_prev(self, tmp_path, baseline):
        expected_weights, _ = baseline
        checkpointer = self.interrupt(tmp_path)
        with open(checkpointer.latest_path, "r+b") as fh:
            fh.seek(8)
            fh.write(b"\xde\xad\xbe\xef" * 16)

        resumed = make_trainer()
        resumed.train(make_matrices(), rng=TRAIN_SEED,
                      checkpointer=TrainerCheckpointer(tmp_path))
        assert_weights_identical(expected_weights, state_dict(resumed.generator))

    def test_both_corrupt_raises_instead_of_silent_restart(self, tmp_path):
        checkpointer = self.interrupt(tmp_path)
        for path in (checkpointer.latest_path, checkpointer.prev_path):
            with open(path, "wb") as fh:
                fh.write(b"not a zip archive")
        with pytest.raises(CheckpointError, match="both corrupt"):
            make_trainer().train(make_matrices(), rng=TRAIN_SEED,
                                 checkpointer=TrainerCheckpointer(tmp_path))

    def test_no_checkpoint_trains_from_scratch(self, tmp_path, baseline):
        expected_weights, _ = baseline
        trainer = make_trainer()
        trainer.train(make_matrices(), rng=TRAIN_SEED,
                      checkpointer=TrainerCheckpointer(tmp_path))
        assert_weights_identical(expected_weights, state_dict(trainer.generator))

    def test_rotation_keeps_two_generations(self, tmp_path):
        import os

        checkpointer = self.interrupt(tmp_path)
        assert os.path.exists(checkpointer.latest_path)
        assert os.path.exists(checkpointer.prev_path)


class TestGuards:
    def test_config_fingerprint_mismatch_raises(self, tmp_path):
        checkpointer = TrainerCheckpointer(tmp_path, every_batches=1)
        stop_after(checkpointer, 2)
        with pytest.raises(TrainingInterrupted):
            make_trainer().train(make_matrices(), rng=TRAIN_SEED,
                                 checkpointer=checkpointer)

        other = make_trainer(tiny_config(batch_size=32))
        with pytest.raises(CheckpointError, match="different training config"):
            other.train(make_matrices(), rng=TRAIN_SEED,
                        checkpointer=TrainerCheckpointer(tmp_path))

    def test_row_count_mismatch_raises(self, tmp_path):
        checkpointer = TrainerCheckpointer(tmp_path, every_batches=1)
        stop_after(checkpointer, 2)
        with pytest.raises(TrainingInterrupted):
            make_trainer().train(make_matrices(), rng=TRAIN_SEED,
                                 checkpointer=checkpointer)

        rng = np.random.default_rng(DATA_SEED)
        smaller = rng.uniform(-1.0, 1.0, size=(48, 1, SIDE, SIDE))
        with pytest.raises(CheckpointError, match="training rows"):
            make_trainer().train(smaller, rng=TRAIN_SEED,
                                 checkpointer=TrainerCheckpointer(tmp_path))

    def test_negative_every_batches_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            TrainerCheckpointer(tmp_path, every_batches=-1)

    def test_request_stop_is_idempotent(self, tmp_path):
        checkpointer = TrainerCheckpointer(tmp_path)
        assert not checkpointer.stop_requested
        checkpointer.request_stop()
        checkpointer.request_stop()
        assert checkpointer.stop_requested
