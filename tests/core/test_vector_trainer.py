"""Trainer mechanics specific to the 1-D vector layout."""

import numpy as np
import pytest

from repro.core.config import TableGanConfig
from repro.core.networks import (
    build_classifier_1d,
    build_discriminator_1d,
    build_generator_1d,
)
from repro.core.trainer import TableGanTrainer


def tiny_config(**overrides):
    defaults = dict(
        epochs=1, batch_size=16, latent_dim=10, base_channels=8,
        layout="vector", seed=0, generator_updates=1,
    )
    defaults.update(overrides)
    return TableGanConfig(**defaults)


def make_trainer(config, length=8):
    gen = build_generator_1d(length, config.latent_dim, config.base_channels, rng=0)
    disc = build_discriminator_1d(length, config.base_channels, rng=1)
    clf = build_classifier_1d(length, config.base_channels, rng=2)
    return TableGanTrainer(gen, disc, clf, config, label_cell=(5,))


def toy_vectors(rng, n=48, length=8):
    mats = rng.uniform(-0.5, 0.5, (n, 1, length))
    mats[:, 0, 5] = np.sign(mats[:, 0, 0])
    return mats


class TestVectorTrainer:
    def test_trains_on_1d_records(self, rng):
        trainer = make_trainer(tiny_config())
        history = trainer.train(toy_vectors(rng), rng=rng)
        assert len(history.epochs) == 1
        epoch = history.epochs[0]
        for value in (epoch.d_loss, epoch.g_adv_loss, epoch.g_info_loss,
                      epoch.g_class_loss, epoch.c_loss):
            assert np.isfinite(value)

    def test_remove_label_zeroes_offset(self, rng):
        trainer = make_trainer(tiny_config())
        mats = toy_vectors(rng, n=8)
        removed = trainer._remove_label(mats)
        assert np.all(removed[:, 0, 5] == 0.0)
        assert np.allclose(removed[:, 0, :5], mats[:, 0, :5])

    def test_labels01_reads_offset(self, rng):
        trainer = make_trainer(tiny_config())
        mats = toy_vectors(rng, n=4)
        mats[:, 0, 5] = np.array([-1.0, 1.0, 0.0, 1.0])
        assert np.allclose(trainer._labels01(mats), [0.0, 1.0, 0.5, 1.0])

    def test_rejects_wrong_rank(self, rng):
        trainer = make_trainer(tiny_config())
        with pytest.raises(ValueError, match="expected"):
            trainer.train(rng.uniform(-1, 1, (10, 8)))

    def test_feature_stats_width_matches_1d_network(self, rng):
        trainer = make_trainer(tiny_config())
        trainer.train(toy_vectors(rng), rng=rng)
        # d=8 1-D ladder: 8 -> 4 -> 2 with channels 8 -> 16; features = 16*2.
        assert trainer.stats.fx_mean.shape == (32,)
