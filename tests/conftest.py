"""Shared fixtures.

Expensive artifacts (dataset bundles, a trained tiny table-GAN) are
session-scoped so the suite stays fast; tests must treat them as
read-only.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import TableGAN, low_privacy
from repro.data.datasets import load_dataset


@pytest.fixture(scope="session")
def adult_bundle():
    """Small Adult bundle shared across tests (read-only)."""
    return load_dataset("adult", rows=400, seed=101)


@pytest.fixture(scope="session")
def lacity_bundle():
    """Small LACity bundle shared across tests (read-only)."""
    return load_dataset("lacity", rows=400, seed=202)


@pytest.fixture(scope="session")
def tiny_gan_config():
    """Config small enough to train in a couple of seconds."""
    return low_privacy(epochs=3, batch_size=32, base_channels=8, seed=11)


@pytest.fixture(scope="session")
def trained_gan(adult_bundle, tiny_gan_config):
    """A table-GAN trained on the tiny Adult bundle (read-only)."""
    gan = TableGAN(tiny_gan_config)
    gan.fit(adult_bundle.train)
    return gan


@pytest.fixture()
def rng():
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)
