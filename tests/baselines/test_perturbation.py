"""MDAV micro-aggregation, PRAM, and the sdcMicro facade."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.perturbation import (
    SdcMicroPerturber,
    mdav_groups,
    microaggregate,
    pram_column,
    pram_table,
    pram_transition_matrix,
    sdcmicro_parameter_sweep,
)
from repro.data.datasets import generate_adult


@pytest.fixture(scope="module")
def adult():
    return generate_adult(rows=300, seed=21)


class TestMdav:
    def test_group_sizes_at_least_k(self, rng):
        values = rng.standard_normal((100, 3))
        for k in (3, 5, 10):
            groups = mdav_groups(values, k)
            assert min(g.size for g in groups) >= k

    def test_groups_partition_rows(self, rng):
        values = rng.standard_normal((97, 2))  # non-multiple of k
        groups = mdav_groups(values, 5)
        allidx = np.sort(np.concatenate(groups))
        assert np.array_equal(allidx, np.arange(97))

    def test_groups_are_spatially_compact(self, rng):
        """MDAV clusters beat random grouping on within-group variance."""
        values = rng.standard_normal((120, 2))
        groups = mdav_groups(values, 6)
        mdav_var = np.mean([values[g].var(axis=0).sum() for g in groups])
        shuffled = rng.permutation(120).reshape(20, 6)
        random_var = np.mean([values[g].var(axis=0).sum() for g in shuffled])
        assert mdav_var < random_var

    def test_rejects_bad_k(self, rng):
        with pytest.raises(ValueError):
            mdav_groups(rng.random((10, 2)), 0)
        with pytest.raises(ValueError):
            mdav_groups(rng.random((3, 2)), 5)


class TestMicroaggregate:
    def test_only_selected_columns_change(self, adult):
        out = microaggregate(adult, adult.schema.qids, k=3)
        untouched = [n for n in adult.schema.names if n not in adult.schema.qids]
        assert np.allclose(out.columns(untouched), adult.columns(untouched))
        assert not np.allclose(
            out.columns(list(adult.schema.qids)),
            adult.columns(list(adult.schema.qids)),
        )

    def test_column_means_preserved(self, adult):
        """Centroid replacement preserves each column's mean exactly."""
        out = microaggregate(adult, adult.schema.qids, k=3)
        for name in adult.schema.qids:
            assert out.column(name).mean() == pytest.approx(adult.column(name).mean())


class TestPram:
    def test_transition_matrix_rows_sum_to_one(self):
        matrix = pram_transition_matrix(np.array([10.0, 5.0, 1.0]), pd=0.7)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert np.allclose(np.diag(matrix), 0.7)

    def test_pd_one_is_identity(self, rng):
        col = rng.integers(0, 4, 100).astype(float)
        assert np.allclose(pram_column(col, pd=1.0, rng=rng), col)

    def test_pd_zero_always_moves(self, rng):
        col = rng.integers(0, 4, 200).astype(float)
        out = pram_column(col, pd=0.0, rng=rng)
        assert np.all(out != col)

    def test_values_stay_in_support(self, rng):
        col = rng.integers(2, 6, 100).astype(float)
        out = pram_column(col, pd=0.5, rng=rng)
        assert set(np.unique(out)) <= set(np.unique(col))

    def test_single_category_stable(self, rng):
        col = np.full(20, 3.0)
        assert np.allclose(pram_column(col, pd=0.5, rng=rng), col)

    def test_pram_table_rejects_continuous(self, adult, rng):
        with pytest.raises(ValueError, match="continuous"):
            pram_table(adult, ["capital_gain"], pd=0.5, rng=rng)

    @settings(max_examples=20, deadline=None)
    @given(pd=st.floats(0, 1), seed=st.integers(0, 100))
    def test_transition_matrix_is_stochastic(self, pd, seed):
        freq = np.random.default_rng(seed).integers(1, 50, 5).astype(float)
        matrix = pram_transition_matrix(freq, pd)
        assert np.allclose(matrix.sum(axis=1), 1.0)
        assert matrix.min() >= 0.0


class TestSdcMicroFacade:
    def test_perturbs_qids_and_sensitive(self, adult):
        out = SdcMicroPerturber(pd=0.5, alpha=0.5, seed=0).perturb(adult)
        qids = list(adult.schema.qids)
        assert not np.allclose(out.columns(qids), adult.columns(qids))
        assert not np.allclose(out.column("capital_gain"), adult.column("capital_gain"))

    def test_label_never_perturbed(self, adult):
        out = SdcMicroPerturber(pd=0.01, alpha=1.0, seed=0).perturb(adult)
        assert np.allclose(out.column("long_hours"), adult.column("long_hours"))

    def test_zero_noise_keeps_continuous(self, adult):
        out = SdcMicroPerturber(pd=1.0, alpha=0.0, seed=0).perturb(adult)
        assert np.allclose(out.column("capital_gain"), adult.column("capital_gain"))

    def test_sweep_matches_paper_grid(self):
        assert len(list(sdcmicro_parameter_sweep())) == 9

    def test_sweep_configs_constructible(self):
        for kwargs in sdcmicro_parameter_sweep():
            SdcMicroPerturber(**kwargs)

    def test_validation(self):
        with pytest.raises(ValueError):
            SdcMicroPerturber(pd=1.5)
        with pytest.raises(ValueError):
            SdcMicroPerturber(alpha=-1.0)
        with pytest.raises(ValueError):
            SdcMicroPerturber(k=0)
