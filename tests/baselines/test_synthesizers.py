"""Condensation and DCGAN baseline synthesizers."""

import numpy as np
import pytest

from repro.baselines.condensation import CondensationSynthesizer
from repro.baselines.dcgan import DCGANSynthesizer
from repro.data.schema import ColumnKind


class TestCondensation:
    def test_preserves_first_order_statistics(self, lacity_bundle):
        train = lacity_bundle.train
        model = CondensationSynthesizer(group_size=40, seed=0).fit(train)
        syn = model.sample(train.n_rows, rng=np.random.default_rng(1))
        for name in ("base_salary", "q1_payments"):
            assert syn.column(name).mean() == pytest.approx(
                train.column(name).mean(), rel=0.1
            )

    def test_output_is_schema_valid(self, lacity_bundle):
        model = CondensationSynthesizer(group_size=40, seed=0).fit(lacity_bundle.train)
        syn = model.sample(100, rng=np.random.default_rng(2))
        for spec in syn.schema.columns:
            col = syn.column(spec.name)
            if spec.kind is ColumnKind.CATEGORICAL:
                assert col.min() >= 0
                assert col.max() <= spec.n_categories - 1

    def test_values_clipped_to_training_range(self, lacity_bundle):
        train = lacity_bundle.train
        model = CondensationSynthesizer(group_size=40, seed=0).fit(train)
        syn = model.sample(200, rng=np.random.default_rng(3))
        for name in train.schema.names:
            assert syn.column(name).min() >= train.column(name).min() - 1e-9
            assert syn.column(name).max() <= train.column(name).max() + 1e-9

    def test_group_count(self, lacity_bundle):
        train = lacity_bundle.train
        model = CondensationSynthesizer(group_size=50, seed=0).fit(train)
        assert len(model.groups_) == int(np.ceil(train.n_rows / 50))

    def test_validation(self, lacity_bundle):
        with pytest.raises(ValueError):
            CondensationSynthesizer(group_size=1)
        with pytest.raises(ValueError):
            CondensationSynthesizer(group_size=10_000).fit(lacity_bundle.train)
        model = CondensationSynthesizer(group_size=40, seed=0)
        with pytest.raises(RuntimeError):
            model.sample(5)


class TestDcganBaseline:
    def test_aux_losses_forced_off(self):
        model = DCGANSynthesizer(epochs=1, seed=0)
        assert not model.config.use_info_loss
        assert not model.config.use_classifier

    def test_config_override_path(self):
        from repro.core.config import TableGanConfig

        base = TableGanConfig(epochs=2, use_info_loss=True, use_classifier=True)
        model = DCGANSynthesizer(config=base)
        assert not model.config.use_info_loss
        assert model.config.epochs == 2

    def test_trains_without_classifier_network(self, adult_bundle):
        model = DCGANSynthesizer(epochs=1, batch_size=32, base_channels=8, seed=0)
        model.fit(adult_bundle.train)
        assert model.classifier_ is None
        assert model.sample(20).n_rows == 20
        history = model.history_
        assert all(e.g_info_loss == 0.0 for e in history.epochs)
        assert all(e.c_loss == 0.0 for e in history.epochs)
