"""Mondrian k-anonymity: partition invariants and generalization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.anonymization.mondrian import (
    generalize,
    merge_partitions,
    mondrian_partitions,
    partition_of_each_row,
)
from repro.data.datasets import generate_adult


@pytest.fixture(scope="module")
def adult():
    return generate_adult(rows=400, seed=9)


class TestPartitions:
    def test_every_partition_at_least_k(self, adult):
        for k in (2, 5, 15):
            partitions = mondrian_partitions(adult, k)
            assert min(p.size for p in partitions) >= k

    def test_partitions_cover_all_rows_exactly_once(self, adult):
        partitions = mondrian_partitions(adult, 5)
        owner = partition_of_each_row(partitions, adult.n_rows)
        assert owner.min() >= 0
        sizes = np.bincount(owner)
        assert sizes.sum() == adult.n_rows

    def test_larger_k_fewer_partitions(self, adult):
        few = mondrian_partitions(adult, 15)
        many = mondrian_partitions(adult, 2)
        assert len(few) < len(many)

    def test_ranges_bound_member_values(self, adult):
        partitions = mondrian_partitions(adult, 5)
        for p in partitions[:10]:
            for name, (lo, hi) in p.ranges.items():
                col = adult.column(name)[p.rows]
                assert col.min() >= lo and col.max() <= hi

    def test_k_one_allows_singletons(self, adult):
        partitions = mondrian_partitions(adult, 1)
        assert min(p.size for p in partitions) >= 1

    def test_rejects_bad_k(self, adult):
        with pytest.raises(ValueError):
            mondrian_partitions(adult, 0)
        with pytest.raises(ValueError):
            mondrian_partitions(adult, adult.n_rows + 1)

    @settings(max_examples=10, deadline=None)
    @given(k=st.integers(2, 30))
    def test_k_anonymity_property(self, adult, k):
        """For any k, every equivalence class has at least k members."""
        partitions = mondrian_partitions(adult, k)
        assert min(p.size for p in partitions) >= k


class TestGeneralize:
    def test_sensitive_untouched(self, adult):
        partitions = mondrian_partitions(adult, 5)
        anon = generalize(adult, partitions)
        sens = list(adult.schema.sensitive)
        assert np.allclose(anon.columns(sens), adult.columns(sens))

    def test_qids_equal_within_partition(self, adult):
        partitions = mondrian_partitions(adult, 5)
        anon = generalize(adult, partitions)
        qids = list(adult.schema.qids)
        for p in partitions[:10]:
            block = anon.columns(qids)[p.rows]
            assert np.allclose(block, block[0])

    def test_generalized_value_is_range_midpoint(self, adult):
        partitions = mondrian_partitions(adult, 5)
        anon = generalize(adult, partitions)
        p = partitions[0]
        name = adult.schema.qids[0]
        lo, hi = p.ranges[name]
        assert np.allclose(anon.column(name)[p.rows], 0.5 * (lo + hi))


class TestMerge:
    def test_merge_unions_rows_and_ranges(self, adult):
        a, b = mondrian_partitions(adult, 50)[:2]
        merged = merge_partitions(a, b)
        assert merged.size == a.size + b.size
        for name in a.ranges:
            assert merged.ranges[name][0] == min(a.ranges[name][0], b.ranges[name][0])
            assert merged.ranges[name][1] == max(a.ranges[name][1], b.ranges[name][1])
