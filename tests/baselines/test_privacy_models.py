"""l-diversity, t-closeness, δ-disclosure and the DP release."""

import numpy as np
import pytest

from repro.baselines.anonymization.closeness import (
    emd_categorical,
    emd_ordered,
    enforce_t_closeness,
    is_t_close,
)
from repro.baselines.anonymization.disclosure import (
    enforce_delta_disclosure,
    is_delta_disclosure_private,
)
from repro.baselines.anonymization.diversity import (
    distinct_sensitive_values,
    enforce_l_diversity,
    is_l_diverse,
)
from repro.baselines.anonymization.dp import DifferentiallyPrivateRelease, dp_parameters
from repro.baselines.anonymization.mondrian import mondrian_partitions
from repro.data.datasets import generate_adult, generate_health


@pytest.fixture(scope="module")
def adult():
    return generate_adult(rows=400, seed=4)


@pytest.fixture(scope="module")
def partitions(adult):
    return mondrian_partitions(adult, 5)


class TestLDiversity:
    def test_enforcement_reaches_l(self, adult, partitions):
        fixed = enforce_l_diversity(adult, partitions, "workclass", 3)
        assert is_l_diverse(adult, fixed, "workclass", 3)

    def test_enforcement_never_loses_rows(self, adult, partitions):
        fixed = enforce_l_diversity(adult, partitions, "workclass", 3)
        assert sum(p.size for p in fixed) == adult.n_rows

    def test_one_diversity_always_holds(self, adult, partitions):
        assert is_l_diverse(adult, partitions, "workclass", 1)

    def test_unsatisfiable_l_raises(self, adult, partitions):
        with pytest.raises(ValueError, match="unsatisfiable"):
            enforce_l_diversity(adult, partitions, "workclass", 100)

    def test_distinct_count(self, adult, partitions):
        count = distinct_sensitive_values(adult, partitions[0], "workclass")
        assert 1 <= count <= 8


class TestEmd:
    def test_identical_distributions_zero(self):
        p = np.array([0.2, 0.3, 0.5])
        assert emd_ordered(p, p) == 0.0
        assert emd_categorical(p, p) == 0.0

    def test_ordered_respects_distance(self):
        # Mass moved one step vs. two steps over a 3-point support.
        base = np.array([1.0, 0.0, 0.0])
        near = np.array([0.0, 1.0, 0.0])
        far = np.array([0.0, 0.0, 1.0])
        assert emd_ordered(base, far) > emd_ordered(base, near)

    def test_categorical_is_total_variation(self):
        p = np.array([1.0, 0.0])
        q = np.array([0.0, 1.0])
        assert emd_categorical(p, q) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            emd_ordered(np.array([1.0]), np.array([0.5, 0.5]))


class TestTCloseness:
    def test_enforcement_reaches_t(self, adult, partitions):
        fixed = enforce_t_closeness(adult, partitions, "hours_per_week", 0.1)
        assert is_t_close(adult, fixed, "hours_per_week", 0.1)

    def test_loose_t_keeps_partitions(self, adult, partitions):
        fixed = enforce_t_closeness(adult, partitions, "hours_per_week", 0.9)
        assert len(fixed) == len(partitions)

    def test_tight_t_merges(self, adult, partitions):
        fixed = enforce_t_closeness(adult, partitions, "hours_per_week", 0.01)
        assert len(fixed) < len(partitions)

    def test_rows_preserved(self, adult, partitions):
        fixed = enforce_t_closeness(adult, partitions, "hours_per_week", 0.05)
        assert sum(p.size for p in fixed) == adult.n_rows

    def test_rejects_negative_t(self, adult, partitions):
        with pytest.raises(ValueError):
            is_t_close(adult, partitions, "hours_per_week", -0.1)


class TestDeltaDisclosure:
    def test_enforcement_reaches_delta(self, adult, partitions):
        fixed = enforce_delta_disclosure(adult, partitions, "workclass", 1.0)
        assert is_delta_disclosure_private(adult, fixed, "workclass", 1.0)

    def test_loose_delta_no_merge(self, adult, partitions):
        fixed = enforce_delta_disclosure(adult, partitions, "workclass", 50.0)
        assert len(fixed) == len(partitions)

    def test_rejects_non_positive_delta(self, adult, partitions):
        with pytest.raises(ValueError):
            enforce_delta_disclosure(adult, partitions, "workclass", 0.0)


class TestDpRelease:
    def test_parameters_derivation(self):
        beta, k = dp_parameters(1.0, 1e-3)
        assert 0 < beta < 1
        assert k >= 2
        # Tighter epsilon -> smaller sample, bigger classes.
        beta2, k2 = dp_parameters(0.1, 1e-3)
        assert beta2 < beta
        assert k2 > k

    def test_release_has_original_row_count(self):
        health = generate_health(rows=300, seed=1)
        released = DifferentiallyPrivateRelease(1.0, 1e-3, seed=0).anonymize(health)
        assert released.n_rows == 300

    def test_released_rows_are_generalized_samples(self):
        health = generate_health(rows=300, seed=1)
        released = DifferentiallyPrivateRelease(1.0, 1e-3, seed=0).anonymize(health)
        # Sampling + re-expansion duplicates rows: fewer unique than total.
        assert np.unique(released.values, axis=0).shape[0] < released.n_rows

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            dp_parameters(0.0, 1e-3)
        with pytest.raises(ValueError):
            dp_parameters(1.0, 0.0)
