"""ArxAnonymizer facade and the paper's parameter sweeps."""

import numpy as np
import pytest

from repro.baselines.anonymization import (
    PAPER_EPSILON_GRID,
    PAPER_K_GRID,
    PAPER_T_GRID,
    ArxAnonymizer,
    arx_parameter_sweep,
)
from repro.data.datasets import generate_adult


@pytest.fixture(scope="module")
def adult():
    return generate_adult(rows=300, seed=13)


class TestArxAnonymizer:
    def test_k_t_preserves_sensitive(self, adult):
        anon = ArxAnonymizer(method="k_t", k=5, t=0.5).anonymize(adult)
        sens = list(adult.schema.sensitive)
        assert np.allclose(anon.columns(sens), adult.columns(sens))

    def test_k_l_method(self, adult):
        anon = ArxAnonymizer(method="k_l", k=5, l=2).anonymize(adult)
        assert anon.n_rows == adult.n_rows

    def test_dp_disclosure_method(self, adult):
        anon = ArxAnonymizer(
            method="dp_disclosure", epsilon=2.0, dp_delta=1e-3,
            disclosure_delta=2.0, seed=0,
        ).anonymize(adult)
        assert anon.n_rows == adult.n_rows

    def test_explicit_sensitive_column(self, adult):
        anon = ArxAnonymizer(method="k_t", k=5, t=0.5, sensitive="workclass")
        assert anon.anonymize(adult).n_rows == adult.n_rows

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            ArxAnonymizer(method="magic")

    def test_unknown_sensitive_rejected(self, adult):
        arx = ArxAnonymizer(method="k_t", sensitive="missing")
        with pytest.raises(KeyError):
            arx.anonymize(adult)

    def test_stronger_k_generalizes_more(self, adult):
        """Higher k coarsens QIDs: fewer distinct generalized QID tuples."""
        weak = ArxAnonymizer(method="k_t", k=2, t=0.9).anonymize(adult)
        strong = ArxAnonymizer(method="k_t", k=15, t=0.9).anonymize(adult)
        qids = list(adult.schema.qids)
        n_weak = np.unique(weak.columns(qids), axis=0).shape[0]
        n_strong = np.unique(strong.columns(qids), axis=0).shape[0]
        assert n_strong < n_weak


class TestSweeps:
    def test_k_t_sweep_covers_grid(self):
        combos = list(arx_parameter_sweep("k_t"))
        assert len(combos) == len(PAPER_K_GRID) * len(PAPER_T_GRID)

    def test_dp_sweep_covers_grid(self):
        combos = list(arx_parameter_sweep("dp_disclosure"))
        assert len(combos) == len(PAPER_EPSILON_GRID) * 3 * 2

    def test_sweep_configs_are_constructible(self):
        for kwargs in arx_parameter_sweep("k_t"):
            ArxAnonymizer(**kwargs)

    def test_unknown_sweep_rejected(self):
        with pytest.raises(ValueError):
            list(arx_parameter_sweep("bogus"))
