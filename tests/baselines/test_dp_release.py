"""Additional DP-release and risk-model interaction tests."""

import numpy as np
import pytest

from repro.baselines.anonymization import (
    ArxAnonymizer,
    DifferentiallyPrivateRelease,
    dp_parameters,
)
from repro.data.datasets import generate_adult
from repro.privacy.risk import risk_report


@pytest.fixture(scope="module")
def adult():
    return generate_adult(rows=400, seed=77)


class TestDpEpsilonTradeoff:
    def test_smaller_epsilon_larger_classes(self, adult):
        """Tighter privacy budget forces coarser generalization."""
        loose = DifferentiallyPrivateRelease(5.0, 1e-3, seed=0)
        tight = DifferentiallyPrivateRelease(0.5, 1e-3, seed=0)
        assert tight.k_ > loose.k_
        assert tight.beta_ < loose.beta_

    def test_beta_bounds(self):
        for epsilon in (0.01, 0.5, 1, 2, 5):
            beta, k = dp_parameters(epsilon, 1e-3)
            assert 0.0 < beta < 1.0
            assert k >= 2

    def test_released_qids_are_generalized(self, adult):
        released = DifferentiallyPrivateRelease(1.0, 1e-3, seed=0).anonymize(adult)
        qids = list(adult.schema.qids)
        n_original = np.unique(adult.columns(qids), axis=0).shape[0]
        n_released = np.unique(released.columns(qids), axis=0).shape[0]
        assert n_released < n_original

    def test_deterministic_with_seed(self, adult):
        a = DifferentiallyPrivateRelease(1.0, 1e-3, seed=4).anonymize(adult)
        b = DifferentiallyPrivateRelease(1.0, 1e-3, seed=4).anonymize(adult)
        assert np.allclose(a.values, b.values)


class TestRiskAcrossMethods:
    def test_dp_release_has_bounded_risk(self, adult):
        released = ArxAnonymizer(
            method="dp_disclosure", epsilon=1.0, dp_delta=1e-3,
            disclosure_delta=2.0, seed=0,
        ).anonymize(adult)
        report = risk_report(released)
        # DP release resamples rows, so classes can only grow.
        assert report.prosecutor_max <= 1.0

    def test_raw_table_risk_is_high(self, adult):
        report = risk_report(adult)
        # Fine-grained QIDs on raw data: many records are unique.
        assert report.prosecutor_max == 1.0
