"""Model-compatibility harness (Figures 5/6 machinery)."""

import numpy as np
import pytest

from repro.evaluation.compatibility import (
    classification_compatibility,
    classifier_suite,
    regression_compatibility,
    regressor_suite,
)


def small_classifier_suite():
    """Fast 2x2 subset keeping the harness path identical."""
    full = classifier_suite()
    return [full[0], full[3], full[10], full[13]]


def small_regressor_suite():
    full = regressor_suite()
    return [full[0], full[10], full[20], full[30]]


class TestSuites:
    def test_classifier_suite_is_4x10(self):
        suite = classifier_suite()
        assert len(suite) == 40
        algorithms = {name for name, _, _ in suite}
        assert algorithms == {"decision_tree", "random_forest", "adaboost", "mlp"}
        for name in algorithms:
            assert sum(1 for n, _, _ in suite if n == name) == 10

    def test_regressor_suite_is_4x10(self):
        suite = regressor_suite()
        assert len(suite) == 40
        algorithms = {name for name, _, _ in suite}
        assert algorithms == {"linear", "lasso", "passive_aggressive", "huber"}


class TestClassificationCompatibility:
    def test_identical_training_tables_on_diagonal(self, adult_bundle):
        """Same training table on both axes -> every point exactly on x=y."""
        report = classification_compatibility(
            adult_bundle.train, adult_bundle.train, adult_bundle.test,
            suite=small_classifier_suite(),
        )
        assert report.metric == "f1"
        assert report.mean_gap == pytest.approx(0.0, abs=1e-12)

    def test_synthetic_table_report(self, adult_bundle, trained_gan):
        syn = trained_gan.sample(adult_bundle.train.n_rows)
        report = classification_compatibility(
            adult_bundle.train, syn, adult_bundle.test,
            suite=small_classifier_suite(),
        )
        assert len(report.points) == 4
        for p in report.points:
            assert 0.0 <= p.score_original <= 1.0
            assert 0.0 <= p.score_released <= 1.0

    def test_by_algorithm_grouping(self, adult_bundle):
        report = classification_compatibility(
            adult_bundle.train, adult_bundle.train, adult_bundle.test,
            suite=small_classifier_suite(),
        )
        groups = report.by_algorithm()
        assert sum(len(v) for v in groups.values()) == 4


class TestRegressionCompatibility:
    def test_identical_training_tables_on_diagonal(self, adult_bundle):
        report = regression_compatibility(
            adult_bundle.train, adult_bundle.train, adult_bundle.test,
            suite=small_regressor_suite(),
        )
        assert report.metric == "mre"
        assert report.mean_gap == pytest.approx(0.0, abs=1e-12)

    def test_health_has_no_regression(self):
        from repro.data.datasets import load_dataset

        health = load_dataset("health", rows=100, seed=0)
        with pytest.raises(ValueError, match="regression"):
            regression_compatibility(health.train, health.train, health.test)

    def test_gap_properties(self, adult_bundle, trained_gan):
        syn = trained_gan.sample(adult_bundle.train.n_rows)
        report = regression_compatibility(
            adult_bundle.train, syn, adult_bundle.test,
            suite=small_regressor_suite(),
        )
        assert report.max_gap >= report.mean_gap >= 0.0
