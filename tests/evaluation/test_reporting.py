"""Text rendering helpers."""

import pytest

from repro.evaluation.reporting import banner, format_cdf_series, format_table
from repro.evaluation.statistical import compare_cdf


class TestFormatTable:
    def test_alignment_and_content(self):
        out = format_table(["name", "value"], [("alpha", 1), ("b", 22)])
        lines = out.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert "alpha" in lines[2]
        assert lines[1].startswith("-")

    def test_title(self):
        out = format_table(["a"], [("x",)], title="Table 5")
        assert out.splitlines()[0] == "Table 5"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            format_table(["a", "b"], [("only-one",)])


class TestFormatCdfSeries:
    def test_contains_summary_stats(self, adult_bundle):
        comparison = compare_cdf(adult_bundle.train, adult_bundle.test, "age")
        out = format_cdf_series(comparison)
        assert "KS=" in out
        assert "attribute=age" in out
        # 11 sample rows + title + header + rule.
        assert len(out.splitlines()) == 14


class TestBanner:
    def test_shape(self):
        out = banner("Table 6: membership attack")
        lines = out.strip().splitlines()
        assert lines[0] == lines[2]
        assert lines[1] == "Table 6: membership attack"
