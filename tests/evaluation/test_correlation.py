"""Correlation-structure similarity metric."""

import numpy as np
import pytest

from repro.evaluation.correlation import (
    correlation_distance,
    correlation_matrix,
    label_correlation_gap,
)


class TestCorrelationMatrix:
    def test_matches_numpy_on_clean_data(self, adult_bundle):
        ours = correlation_matrix(adult_bundle.train)
        reference = np.corrcoef(adult_bundle.train.values.T)
        assert np.allclose(ours, reference, atol=1e-10)

    def test_constant_column_is_finite(self, adult_bundle):
        t = adult_bundle.train
        values = t.values.copy()
        values[:, 0] = 7.0
        corr = correlation_matrix(t.with_values(values))
        assert np.all(np.isfinite(corr))
        assert corr[0, 0] == 1.0
        assert np.allclose(corr[0, 1:], 0.0)

    def test_symmetric_unit_diagonal(self, lacity_bundle):
        corr = correlation_matrix(lacity_bundle.train)
        assert np.allclose(corr, corr.T)
        assert np.allclose(np.diag(corr), 1.0)
        assert corr.min() >= -1.0 and corr.max() <= 1.0


class TestCorrelationDistance:
    def test_identical_tables_zero(self, adult_bundle):
        assert correlation_distance(adult_bundle.train, adult_bundle.train) == 0.0

    def test_shuffled_columns_destroy_structure(self, adult_bundle, rng):
        """Independently permuting each column kills correlations."""
        t = adult_bundle.train
        values = t.values.copy()
        for j in range(values.shape[1]):
            rng.shuffle(values[:, j])
        shuffled = t.with_values(values)
        assert correlation_distance(t, shuffled) > 0.05

    def test_synthetic_distance_bounded(self, adult_bundle, trained_gan):
        """A (briefly trained) GAN's correlation distance stays in range.

        Distinguishing a well-trained GAN from column-shuffled data needs
        longer training than the shared test fixture; the benchmark suite's
        ablation runs cover that ordering.
        """
        syn = trained_gan.sample(adult_bundle.train.n_rows)
        distance = correlation_distance(adult_bundle.train, syn)
        assert 0.0 <= distance <= 2.0

    def test_schema_mismatch_rejected(self, adult_bundle, lacity_bundle):
        with pytest.raises(ValueError, match="schema"):
            correlation_distance(adult_bundle.train, lacity_bundle.train)


class TestLabelCorrelationGap:
    def test_identical_tables_zero(self, adult_bundle):
        assert label_correlation_gap(adult_bundle.train, adult_bundle.train) == 0.0

    def test_flipped_label_maximal(self, adult_bundle):
        t = adult_bundle.train
        values = t.values.copy()
        j = t.schema.index(t.schema.label)
        values[:, j] = 1.0 - values[:, j]
        flipped = t.with_values(values)
        # Flipping the label negates every label correlation, doubling each
        # absolute difference.
        gap = label_correlation_gap(t, flipped)
        assert gap > 0.1

    def test_requires_label(self, adult_bundle):
        from repro.data.schema import TableSchema
        from repro.data.table import Table

        schema = adult_bundle.train.schema
        keep = [i for i, c in enumerate(schema.columns) if c.name != schema.label]
        stripped = Table(
            adult_bundle.train.values[:, keep],
            TableSchema([schema.columns[i] for i in keep]),
        )
        with pytest.raises(ValueError, match="label"):
            label_correlation_gap(stripped, stripped)
