"""CDF comparison (Figures 4/7/8 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.statistical import (
    compare_all_sensitive,
    compare_cdf,
    empirical_cdf,
    mean_area_distance,
)


class TestEmpiricalCdf:
    def test_step_function_values(self):
        values = np.array([1.0, 2.0, 3.0])
        grid = np.array([0.5, 1.0, 2.5, 3.0, 4.0])
        assert np.allclose(empirical_cdf(values, grid), [0, 1 / 3, 2 / 3, 1, 1])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_monotone_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(50)
        grid = np.linspace(-4, 4, 60)
        cdf = empirical_cdf(values, grid)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf.min() >= 0.0 and cdf.max() <= 1.0


class TestCompareCdf:
    def test_identical_tables_zero_distance(self, adult_bundle):
        c = compare_cdf(adult_bundle.train, adult_bundle.train, "hours_per_week")
        assert c.ks_statistic == 0.0
        assert c.area_distance == 0.0

    def test_shifted_distribution_detected(self, adult_bundle):
        t = adult_bundle.train
        shifted_values = t.values.copy()
        j = t.schema.index("hours_per_week")
        shifted_values[:, j] = shifted_values[:, j] + 30.0
        c = compare_cdf(t, t.with_values(shifted_values), "hours_per_week")
        assert c.ks_statistic > 0.5

    def test_grid_normalized(self, adult_bundle):
        c = compare_cdf(adult_bundle.train, adult_bundle.test, "age")
        assert c.grid[0] == 0.0
        assert c.grid[-1] == 1.0

    def test_series_rendering(self, adult_bundle):
        c = compare_cdf(adult_bundle.train, adult_bundle.test, "age", n_points=10)
        series = c.series()
        assert len(series) == 10
        assert all(len(row) == 3 for row in series)

    def test_constant_column_safe(self, adult_bundle):
        t = adult_bundle.train
        const_values = t.values.copy()
        const_values[:, 0] = 5.0
        const = t.with_values(const_values)
        c = compare_cdf(const, const, t.schema.names[0])
        assert np.isfinite(c.ks_statistic)

    def test_rejects_tiny_grid(self, adult_bundle):
        with pytest.raises(ValueError):
            compare_cdf(adult_bundle.train, adult_bundle.test, "age", n_points=1)


class TestAggregates:
    def test_compare_all_sensitive_coverage(self, adult_bundle):
        out = compare_all_sensitive(adult_bundle.train, adult_bundle.test)
        assert set(out) == set(adult_bundle.train.schema.sensitive)

    def test_mean_area_identical_is_zero(self, adult_bundle):
        assert mean_area_distance(adult_bundle.train, adult_bundle.train) == 0.0

    def test_mean_area_orders_similarity(self, adult_bundle, trained_gan):
        """A trained GAN's output is closer than a shuffled-scale corruption."""
        syn = trained_gan.sample(adult_bundle.train.n_rows)
        garbled_values = adult_bundle.train.values.copy() * 0.2 + 3.0
        garbled = adult_bundle.train.with_values(garbled_values)
        assert mean_area_distance(adult_bundle.train, syn) < mean_area_distance(
            adult_bundle.train, garbled
        )
