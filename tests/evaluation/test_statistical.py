"""CDF comparison (Figures 4/7/8 machinery)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.statistical import (
    compare_all_sensitive,
    compare_binned,
    compare_cdf,
    empirical_cdf,
    mean_area_distance,
)


class TestEmpiricalCdf:
    def test_step_function_values(self):
        values = np.array([1.0, 2.0, 3.0])
        grid = np.array([0.5, 1.0, 2.5, 3.0, 4.0])
        assert np.allclose(empirical_cdf(values, grid), [0, 1 / 3, 2 / 3, 1, 1])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_monotone_and_bounded(self, seed):
        rng = np.random.default_rng(seed)
        values = rng.standard_normal(50)
        grid = np.linspace(-4, 4, 60)
        cdf = empirical_cdf(values, grid)
        assert np.all(np.diff(cdf) >= 0)
        assert cdf.min() >= 0.0 and cdf.max() <= 1.0


class TestCompareCdf:
    def test_identical_tables_zero_distance(self, adult_bundle):
        c = compare_cdf(adult_bundle.train, adult_bundle.train, "hours_per_week")
        assert c.ks_statistic == 0.0
        assert c.area_distance == 0.0

    def test_shifted_distribution_detected(self, adult_bundle):
        t = adult_bundle.train
        shifted_values = t.values.copy()
        j = t.schema.index("hours_per_week")
        shifted_values[:, j] = shifted_values[:, j] + 30.0
        c = compare_cdf(t, t.with_values(shifted_values), "hours_per_week")
        assert c.ks_statistic > 0.5

    def test_grid_normalized(self, adult_bundle):
        c = compare_cdf(adult_bundle.train, adult_bundle.test, "age")
        assert c.grid[0] == 0.0
        assert c.grid[-1] == 1.0

    def test_series_rendering(self, adult_bundle):
        c = compare_cdf(adult_bundle.train, adult_bundle.test, "age", n_points=10)
        series = c.series()
        assert len(series) == 10
        assert all(len(row) == 3 for row in series)

    def test_constant_column_safe(self, adult_bundle):
        t = adult_bundle.train
        const_values = t.values.copy()
        const_values[:, 0] = 5.0
        const = t.with_values(const_values)
        c = compare_cdf(const, const, t.schema.names[0])
        assert np.isfinite(c.ks_statistic)

    def test_rejects_tiny_grid(self, adult_bundle):
        with pytest.raises(ValueError):
            compare_cdf(adult_bundle.train, adult_bundle.test, "age", n_points=1)


class TestEdgeCases:
    """Degenerate inputs must yield finite scores — never NaN, never raise."""

    def test_empty_values_cdf_is_zero(self):
        cdf = empirical_cdf(np.array([]), np.linspace(0, 1, 10))
        assert cdf.shape == (10,)
        assert (cdf == 0.0).all()

    def test_single_row_tables(self, adult_bundle):
        t = adult_bundle.train
        one = t.with_values(t.values[:1])
        c = compare_cdf(one, one, "age")
        assert c.ks_statistic == 0.0
        assert np.isfinite(c.area_distance)

    def test_two_constant_columns_different_values(self, adult_bundle):
        """Two constant tables with disjoint values: max discrepancy, finite."""
        t = adult_bundle.train
        a_values, b_values = t.values.copy(), t.values.copy()
        j = t.schema.index("age")
        a_values[:, j] = 1.0
        b_values[:, j] = 2.0
        c = compare_cdf(t.with_values(a_values), t.with_values(b_values), "age")
        assert c.ks_statistic == 1.0
        assert np.isfinite(c.area_distance)

    def test_empty_tables_both_sides(self, adult_bundle):
        t = adult_bundle.train
        empty = t.with_values(t.values[:0])
        c = compare_cdf(empty, empty, "age")
        assert c.ks_statistic == 0.0
        assert c.area_distance == 0.0

    def test_empty_against_populated(self, adult_bundle):
        """Empty-vs-populated (no value intersection) saturates, finite."""
        t = adult_bundle.train
        empty = t.with_values(t.values[:0])
        c = compare_cdf(t, empty, "age")
        assert np.isfinite(c.ks_statistic)
        assert np.isfinite(c.area_distance)
        assert c.ks_statistic == 1.0

    def test_identical_synthetic_every_attribute(self, adult_bundle):
        """All-identical released vs real: exactly zero on every attribute."""
        out = compare_all_sensitive(adult_bundle.train, adult_bundle.train)
        for c in out.values():
            assert c.ks_statistic == 0.0
            assert c.area_distance == 0.0

    def test_mean_area_empty_tables_is_finite(self, adult_bundle):
        t = adult_bundle.train
        empty = t.with_values(t.values[:0])
        value = mean_area_distance(empty, empty)
        assert np.isfinite(value)


class TestCompareBinned:
    def test_identical_counts_zero(self):
        c = compare_binned("x", [5, 3, 2], [10, 6, 4])
        assert c.ks_statistic == pytest.approx(0.0)
        assert c.area_distance == pytest.approx(0.0)

    def test_disjoint_mass_saturates(self):
        c = compare_binned("x", [10, 0, 0], [0, 0, 10])
        assert c.ks_statistic == pytest.approx(1.0)

    def test_zero_total_side_is_finite(self):
        c = compare_binned("x", [0, 0, 0], [1, 2, 3])
        assert np.isfinite(c.ks_statistic)
        assert np.isfinite(c.area_distance)
        both = compare_binned("x", [0, 0], [0, 0])
        assert both.ks_statistic == 0.0

    def test_single_bin(self):
        c = compare_binned("x", [7], [3])
        assert c.ks_statistic == pytest.approx(0.0)
        assert np.isfinite(c.area_distance)

    def test_matches_compare_cdf_shape(self):
        c = compare_binned("x", [1, 2, 3, 4], [4, 3, 2, 1])
        assert c.grid[0] == 0.0 and c.grid[-1] == 1.0
        assert len(c.series()) == 4

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            compare_binned("x", [1, 2], [1, 2, 3])
        with pytest.raises(ValueError):
            compare_binned("x", [], [])


class TestAggregates:
    def test_compare_all_sensitive_coverage(self, adult_bundle):
        out = compare_all_sensitive(adult_bundle.train, adult_bundle.test)
        assert set(out) == set(adult_bundle.train.schema.sensitive)

    def test_mean_area_identical_is_zero(self, adult_bundle):
        assert mean_area_distance(adult_bundle.train, adult_bundle.train) == 0.0

    def test_mean_area_orders_similarity(self, adult_bundle, trained_gan):
        """A trained GAN's output is closer than a shuffled-scale corruption."""
        syn = trained_gan.sample(adult_bundle.train.n_rows)
        garbled_values = adult_bundle.train.values.copy() * 0.2 + 3.0
        garbled = adult_bundle.train.with_values(garbled_values)
        assert mean_area_distance(adult_bundle.train, syn) < mean_area_distance(
            adult_bundle.train, garbled
        )
