"""Shared utilities: rng helpers and validation."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rng
from repro.utils.validation import (
    check_array,
    check_fitted,
    check_positive,
    check_probability,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.allclose(a, b)

    def test_generator_passes_through(self):
        rng = np.random.default_rng(0)
        assert ensure_rng(rng) is rng


class TestSpawnRng:
    def test_children_are_independent_and_deterministic(self):
        parent_a = np.random.default_rng(1)
        parent_b = np.random.default_rng(1)
        children_a = spawn_rng(parent_a, 3)
        children_b = spawn_rng(parent_b, 3)
        for ca, cb in zip(children_a, children_b):
            assert np.allclose(ca.random(4), cb.random(4))
        # Distinct children produce distinct streams.
        assert not np.allclose(children_a[0].random(4), children_a[1].random(4))

    def test_zero_children(self):
        assert spawn_rng(np.random.default_rng(0), 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_rng(np.random.default_rng(0), -1)


class TestCheckArray:
    def test_converts_and_validates_ndim(self):
        out = check_array([[1, 2], [3, 4]], ndim=2)
        assert out.dtype == np.float64
        assert out.flags["C_CONTIGUOUS"]

    def test_wrong_ndim_rejected(self):
        with pytest.raises(ValueError, match="2-dimensional"):
            check_array([1.0, 2.0], "x", ndim=2)

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            check_array(np.zeros((0, 3)), "x")


class TestCheckFitted:
    def test_missing_attribute_raises(self):
        class Model:
            pass

        with pytest.raises(RuntimeError, match="not fitted"):
            check_fitted(Model(), "coef_")

    def test_present_attribute_passes(self):
        class Model:
            coef_ = np.zeros(3)

        check_fitted(Model(), "coef_")  # must not raise


class TestScalarChecks:
    def test_check_positive(self):
        check_positive(1.0, "x")
        check_positive(0.0, "x", strict=False)
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive(-1.0, "x", strict=False)

    def test_check_probability(self):
        check_probability(0.0, "p")
        check_probability(1.0, "p")
        with pytest.raises(ValueError):
            check_probability(1.5, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
