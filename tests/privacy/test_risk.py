"""Classical risk models (prosecutor/journalist/marketer)."""

import numpy as np
import pytest

from repro.baselines.anonymization import ArxAnonymizer
from repro.privacy.risk import (
    assert_applicable_to,
    equivalence_class_sizes,
    risk_report,
)


class TestEquivalenceClasses:
    def test_generalized_table_sizes(self, adult_bundle):
        anon = ArxAnonymizer(method="k_t", k=5, t=0.9).anonymize(adult_bundle.train)
        sizes = equivalence_class_sizes(anon)
        assert sizes.shape == (adult_bundle.train.n_rows,)
        assert sizes.min() >= 5  # k-anonymity reflected in class sizes

    def test_raw_table_mostly_singletons(self, adult_bundle):
        sizes = equivalence_class_sizes(adult_bundle.train)
        assert np.median(sizes) <= 2


class TestRiskReport:
    def test_k_anonymity_bounds_prosecutor_risk(self, adult_bundle):
        """risk(p) = 1/|class| <= 1/k (paper §2.2 formula)."""
        for k in (2, 5, 15):
            anon = ArxAnonymizer(method="k_t", k=k, t=0.9).anonymize(adult_bundle.train)
            report = risk_report(anon)
            assert report.prosecutor_max <= 1.0 / k + 1e-12

    def test_stronger_k_lower_risk(self, adult_bundle):
        weak = risk_report(ArxAnonymizer(method="k_t", k=2, t=0.9).anonymize(adult_bundle.train))
        strong = risk_report(ArxAnonymizer(method="k_t", k=15, t=0.9).anonymize(adult_bundle.train))
        assert strong.prosecutor_max <= weak.prosecutor_max
        assert strong.marketer_risk < weak.marketer_risk

    def test_marketer_equals_mean_prosecutor(self, adult_bundle):
        anon = ArxAnonymizer(method="k_t", k=5, t=0.9).anonymize(adult_bundle.train)
        report = risk_report(anon)
        assert report.marketer_risk == pytest.approx(report.prosecutor_mean)


class TestApplicability:
    @pytest.mark.parametrize("method", ["table-gan", "tablegan", "dcgan", "condensation"])
    def test_rejects_synthesis_methods(self, method):
        """§2.2: risk metrics need record correspondence; synthesis has none."""
        with pytest.raises(ValueError, match="one-to-one"):
            assert_applicable_to(method)

    @pytest.mark.parametrize("method", ["arx", "sdcmicro", "k-anonymity"])
    def test_accepts_anonymization_methods(self, method):
        assert_applicable_to(method)  # must not raise
