"""Distance to the closest record."""

import numpy as np
import pytest

from repro.baselines.anonymization import ArxAnonymizer
from repro.privacy.dcr import closest_synthetic_rows, dcr, dcr_sensitive_only


class TestDcr:
    def test_identical_table_zero(self, adult_bundle):
        result = dcr(adult_bundle.train, adult_bundle.train)
        assert result.mean == 0.0
        assert result.std == 0.0
        assert result.min == 0.0

    def test_arx_sensitive_only_is_zero(self, adult_bundle):
        """Table 5's defining row: ARX never touches sensitive attributes."""
        anon = ArxAnonymizer(method="k_t", k=5, t=0.9).anonymize(adult_bundle.train)
        result = dcr_sensitive_only(adult_bundle.train, anon)
        assert result.mean == 0.0
        assert result.std == 0.0

    def test_arx_full_dcr_positive(self, adult_bundle):
        anon = ArxAnonymizer(method="k_t", k=15, t=0.9).anonymize(adult_bundle.train)
        result = dcr(adult_bundle.train, anon)
        assert result.mean > 0.0

    def test_synthetic_dcr_positive(self, trained_gan, adult_bundle):
        syn = trained_gan.sample(adult_bundle.train.n_rows)
        result = dcr(adult_bundle.train, syn)
        assert result.mean > 0.0
        assert result.distances.shape == (adult_bundle.train.n_rows,)

    def test_column_subset(self, adult_bundle, trained_gan):
        syn = trained_gan.sample(200)
        full = dcr(adult_bundle.train, syn)
        sens = dcr(adult_bundle.train, syn, columns=adult_bundle.train.schema.sensitive)
        # Fewer dimensions can only lower (or keep) the minimum distance.
        assert sens.mean <= full.mean + 1e-9

    def test_schema_mismatch_raises(self, adult_bundle, lacity_bundle):
        with pytest.raises(ValueError, match="schema"):
            dcr(adult_bundle.train, lacity_bundle.train)

    def test_empty_column_selection_raises(self, adult_bundle):
        with pytest.raises(ValueError, match="no columns"):
            dcr(adult_bundle.train, adult_bundle.train, columns=[])

    def test_formatted_cell(self, adult_bundle):
        cell = dcr(adult_bundle.train, adult_bundle.train).formatted()
        assert cell == "0.00 ± 0.00"

    def test_blocked_computation_matches_direct(self, adult_bundle, trained_gan):
        """Block size must not change results (pure memory optimization)."""
        from repro.privacy.dcr import closest_record_distances

        syn = trained_gan.sample(150)
        a = closest_record_distances(adult_bundle.train, syn, block_size=7)
        b = closest_record_distances(adult_bundle.train, syn, block_size=10_000)
        assert np.allclose(a, b)


class TestClosestRows:
    def test_self_match(self, adult_bundle):
        idx = closest_synthetic_rows(adult_bundle.train, adult_bundle.train)
        # Every row's nearest neighbour in the same table is itself (distance 0).
        distances = np.linalg.norm(
            adult_bundle.train.values - adult_bundle.train.values[idx], axis=1
        )
        assert np.allclose(distances, 0.0)

    def test_indices_in_range(self, adult_bundle, trained_gan):
        syn = trained_gan.sample(77)
        idx = closest_synthetic_rows(adult_bundle.train, syn)
        assert idx.shape == (adult_bundle.train.n_rows,)
        assert idx.min() >= 0 and idx.max() < 77
