"""Shadow-model membership attack (§4.5)."""

import numpy as np
import pytest

from repro import low_privacy
from repro.privacy.membership import MembershipAttack, _attack_features


class TestAttackFeatures:
    def test_shape_and_finiteness(self):
        scores = np.array([0.0, 0.5, 1.0])  # boundary scores must not blow up
        feats = _attack_features(scores)
        assert feats.shape == (3, 3)
        assert np.all(np.isfinite(feats))

    def test_monotone_in_score(self):
        feats = _attack_features(np.array([0.1, 0.9]))
        assert feats[1, 0] > feats[0, 0]


class TestMembershipAttack:
    @pytest.fixture(scope="class")
    def attack_result(self, trained_gan, adult_bundle, tiny_gan_config):
        attack = MembershipAttack(
            n_shadows=1, shadow_config=tiny_gan_config, seed=77
        )
        return attack.run(trained_gan, adult_bundle.train, adult_bundle.test)

    def test_metrics_in_valid_range(self, attack_result):
        assert 0.0 <= attack_result.f1 <= 1.0
        assert 0.0 <= attack_result.auc <= 1.0

    def test_per_class_breakdown(self, attack_result):
        assert len(attack_result.per_class_f1) >= 1
        assert set(attack_result.per_class_f1) == set(attack_result.per_class_auc)

    def test_balanced_evaluation_set(self, attack_result):
        assert attack_result.n_eval > 0
        assert attack_result.n_eval % 2 == 0

    def test_schema_mismatch_rejected(self, trained_gan, adult_bundle, lacity_bundle):
        attack = MembershipAttack(n_shadows=1, seed=0)
        with pytest.raises(ValueError, match="schema"):
            attack.run(trained_gan, adult_bundle.train, lacity_bundle.train)

    def test_requires_label(self, trained_gan, adult_bundle):
        from repro.data.schema import TableSchema
        from repro.data.table import Table

        schema = adult_bundle.train.schema
        keep = [i for i, c in enumerate(schema.columns) if c.name != schema.label]
        unlabeled_schema = TableSchema([schema.columns[i] for i in keep])
        unlabeled = Table(adult_bundle.train.values[:, keep], unlabeled_schema)
        attack = MembershipAttack(n_shadows=1, seed=0)
        with pytest.raises(ValueError, match="schema|label"):
            attack.run(trained_gan, unlabeled, unlabeled)

    def test_rejects_zero_shadows(self):
        with pytest.raises(ValueError):
            MembershipAttack(n_shadows=0)


class TestPaperAttackModels:
    """The §5.3.2 protocol: five families tuned by grid search + k-fold CV."""

    def test_all_five_families_constructible(self):
        from repro.privacy import ATTACK_MODEL_FAMILIES, paper_attack_model

        assert len(ATTACK_MODEL_FAMILIES) == 5
        for family in ATTACK_MODEL_FAMILIES:
            model = paper_attack_model(family, cv=3, seed=0)
            assert hasattr(model, "fit")
            assert hasattr(model, "predict_proba")

    def test_unknown_family_rejected(self):
        from repro.privacy import paper_attack_model

        with pytest.raises(KeyError, match="unknown family"):
            paper_attack_model("naive_bayes")

    def test_grid_searched_family_learns(self, rng):
        from repro.privacy import paper_attack_model

        X = np.vstack([rng.normal(0, 1, (60, 3)), rng.normal(2, 1, (60, 3))])
        y = np.array([0.0] * 60 + [1.0] * 60)
        model = paper_attack_model("decision_tree", cv=3, seed=0)
        model.fit(X, y)
        assert (model.predict(X) == y).mean() > 0.9

    def test_attack_accepts_grid_searched_model(self, trained_gan, adult_bundle,
                                                tiny_gan_config):
        from repro.privacy import paper_attack_model

        attack = MembershipAttack(
            n_shadows=1,
            shadow_config=tiny_gan_config,
            attack_model=paper_attack_model("decision_tree", cv=3, seed=0),
            seed=3,
        )
        result = attack.run(trained_gan, adult_bundle.train, adult_bundle.test)
        assert 0.0 <= result.auc <= 1.0
