"""Smoke tests for the training-engine benchmark (``repro bench --quick``).

Runs the real benchmark code path on the scaled-down quick workload so the
engine/reference dispatch, the report schema, and the CLI wiring cannot
silently rot between releases.
"""

import json

import pytest

from repro.bench import (
    KERNEL_CHECK_KEYS,
    QUICK_WORKLOAD,
    REPORT_KEYS,
    WORKLOAD,
    _serving_load_timings,
    check_report,
    format_report,
    main,
    run_benchmarks,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_benchmarks(quick=True)


class TestQuickBenchmark:
    def test_report_schema(self, quick_report):
        assert quick_report["quick"] is True
        assert quick_report["workload"] == QUICK_WORKLOAD
        for section in ("engine", "reference"):
            assert set(quick_report[section]) == set(REPORT_KEYS)
            for key, value in quick_report[section].items():
                assert value > 0, key

    def test_speedups_computed_for_every_metric(self, quick_report):
        expected = {key.removesuffix("_s") for key in REPORT_KEYS}
        assert set(quick_report["speedup"]) == expected
        for name, ratio in quick_report["speedup"].items():
            assert ratio > 0, name

    def test_synthesis_section(self, quick_report):
        synthesis = quick_report["synthesis"]
        for key in ("per_request_rows_per_s", "microbatched_rows_per_s",
                    "sharded_rows_per_s", "microbatch_speedup"):
            assert synthesis[key] > 0, key
        assert synthesis["requests"] == QUICK_WORKLOAD["synth_requests"]
        assert synthesis["sharded_worker_invariant"] is True

    def test_quick_mode_skips_serving_load_gen_with_a_note(self, quick_report):
        """Quick mode must stay a smoke test — no sockets, no client
        fleet — but the dropped section has to be explicit in the JSON."""
        serving = quick_report["serving"]
        assert serving["skipped"] is True
        assert "serving load generator" in serving["log"]
        assert "rows_per_s" not in str(serving)

    def test_large_batch_section(self, quick_report):
        large_batch = quick_report["large_batch"]
        expected = [str(r) for r in QUICK_WORKLOAD["large_batch_rows"]]
        assert list(large_batch["rows_per_s"]) == expected
        for rows, value in large_batch["rows_per_s"].items():
            assert value > 0, rows
        assert isinstance(large_batch["flat_beyond_256"], bool)

    def test_training_section(self, quick_report):
        training = quick_report["training"]
        assert training["workers"] == QUICK_WORKLOAD["training_workers"]
        assert set(training["epoch_s"]) == {
            str(n) for n in training["workers"]
        }
        for key, value in training["epoch_s"].items():
            assert value > 0, key
        assert set(training["speedup_vs_serial"]) == set(training["epoch_s"])
        # The headline bit: weights are a function of the data and the
        # shards, never the worker count.
        assert training["worker_invariant"] is True
        assert training["cores"] >= 1
        if training["cores"] < max(training["workers"]):
            assert "core(s) visible" in training["log"]

    def test_format_report_lists_every_metric(self, quick_report):
        text = format_report(quick_report)
        for key in REPORT_KEYS:
            assert key.removesuffix("_s") in text
        assert "synthesis throughput" in text
        assert "micro-batched" in text
        assert "serving load test skipped" in text
        assert "data-parallel training" in text
        assert "worker-invariant weights: True" in text

    def test_write_report_round_trips(self, quick_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(quick_report, str(path))
        assert json.loads(path.read_text()) == quick_report

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_benchmarks(repeats=0)


class TestServingLoadGen:
    def test_scaled_down_load_test_reports_both_modes(self):
        """The real server + multi-process client fleet on a tiny
        workload: the section's schema and both serving modes must work
        end to end (speedup magnitude is only meaningful at full scale)."""
        workload = dict(
            WORKLOAD,
            serving_clients=2,
            serving_requests_per_client=2,
            serving_request_rows=4,
            serving_side=8,
            serving_base_channels=8,
            serving_pool_rows=32,
            serving_passes=1,
        )
        report = _serving_load_timings(workload)
        assert report["clients"] == 2
        for mode in ("per_request", "coalesce_only", "coalesced"):
            assert report[mode]["rows_per_s"] > 0
            assert report[mode]["p99_ms"] >= report[mode]["p50_ms"]
            assert report[mode]["requests"] == 4
        assert report["coalesce_speedup"] > 0
        assert report["pure_coalesce_speedup"] > 0
        text = format_report({"engine": {}, "speedup": {},
                              "serving": report})
        assert "HTTP serving load test" in text
        assert "coalescing speedup" in text


class TestCheckTripwire:
    def test_passing_report_has_no_failures(self):
        report = {
            "engine": {key: 1.0 for key in KERNEL_CHECK_KEYS},
            "reference": {key: 2.0 for key in KERNEL_CHECK_KEYS},
            "speedup": {key.removesuffix("_s"): 2.0
                        for key in KERNEL_CHECK_KEYS},
        }
        assert check_report(report) == []

    def test_slower_kernel_is_reported(self):
        report = {
            "engine": {key: 1.0 for key in KERNEL_CHECK_KEYS},
            "reference": {key: 2.0 for key in KERNEL_CHECK_KEYS},
            "speedup": {key.removesuffix("_s"): 2.0
                        for key in KERNEL_CHECK_KEYS},
        }
        report["speedup"]["conv_backward"] = 0.7
        report["engine"]["conv_backward_s"] = 2.0
        failures = check_report(report)
        assert len(failures) == 1
        assert "conv_backward" in failures[0]

    def test_noise_margin_tolerates_dead_heats(self):
        """A 0.95x dead heat on a microsecond kernel is noise, not a
        regression; real fallbacks show integer-factor slowdowns."""
        report = {
            "engine": {key: 1.0 for key in KERNEL_CHECK_KEYS},
            "reference": {key: 0.95 for key in KERNEL_CHECK_KEYS},
            "speedup": {key.removesuffix("_s"): 0.95
                        for key in KERNEL_CHECK_KEYS},
        }
        assert check_report(report) == []
        assert len(check_report(report, min_speedup=1.0)) == len(KERNEL_CHECK_KEYS)

    def test_fit_epoch_is_not_gated(self):
        """fit_epoch is an epoch, not a kernel: noise must not fail CI."""
        assert "fit_epoch_s" not in KERNEL_CHECK_KEYS

    def test_real_quick_report_passes(self, quick_report):
        # The engine is typically 1.5-5x faster per kernel; the tripwire
        # must not fire on a healthy run.
        assert check_report(quick_report) == []


class TestCliWiring:
    def test_main_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_engine.json"
        assert main(str(out), quick=True) == 0
        report = json.loads(out.read_text())
        assert report["quick"] is True
        assert "fit_epoch_s" in report["engine"]
        assert "report written" in capsys.readouterr().out

    def test_cli_parses_quick_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick is True
        args = build_parser().parse_args(["bench"])
        assert args.quick is False

    def test_cli_parses_check_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--quick", "--check"])
        assert args.check is True
        assert build_parser().parse_args(["bench"]).check is False

    def test_unwritable_path_fails_fast(self, tmp_path, capsys):
        assert main(str(tmp_path / "missing" / "x.json"), quick=True) == 1
        assert "cannot write" in capsys.readouterr().out
