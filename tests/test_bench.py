"""Smoke tests for the training-engine benchmark (``repro bench --quick``).

Runs the real benchmark code path on the scaled-down quick workload so the
engine/reference dispatch, the report schema, and the CLI wiring cannot
silently rot between releases.
"""

import json

import pytest

from repro.bench import (
    QUICK_WORKLOAD,
    REPORT_KEYS,
    format_report,
    main,
    run_benchmarks,
    write_report,
)


@pytest.fixture(scope="module")
def quick_report():
    return run_benchmarks(quick=True)


class TestQuickBenchmark:
    def test_report_schema(self, quick_report):
        assert quick_report["quick"] is True
        assert quick_report["workload"] == QUICK_WORKLOAD
        for section in ("engine", "reference"):
            assert set(quick_report[section]) == set(REPORT_KEYS)
            for key, value in quick_report[section].items():
                assert value > 0, key

    def test_speedups_computed_for_every_metric(self, quick_report):
        expected = {key.removesuffix("_s") for key in REPORT_KEYS}
        assert set(quick_report["speedup"]) == expected
        for name, ratio in quick_report["speedup"].items():
            assert ratio > 0, name

    def test_synthesis_section(self, quick_report):
        synthesis = quick_report["synthesis"]
        for key in ("per_request_rows_per_s", "microbatched_rows_per_s",
                    "sharded_rows_per_s", "microbatch_speedup"):
            assert synthesis[key] > 0, key
        assert synthesis["requests"] == QUICK_WORKLOAD["synth_requests"]
        assert synthesis["sharded_worker_invariant"] is True

    def test_format_report_lists_every_metric(self, quick_report):
        text = format_report(quick_report)
        for key in REPORT_KEYS:
            assert key.removesuffix("_s") in text
        assert "synthesis throughput" in text
        assert "micro-batched" in text

    def test_write_report_round_trips(self, quick_report, tmp_path):
        path = tmp_path / "bench.json"
        write_report(quick_report, str(path))
        assert json.loads(path.read_text()) == quick_report

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_benchmarks(repeats=0)


class TestCliWiring:
    def test_main_quick_writes_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_engine.json"
        assert main(str(out), quick=True) == 0
        report = json.loads(out.read_text())
        assert report["quick"] is True
        assert "fit_epoch_s" in report["engine"]
        assert "report written" in capsys.readouterr().out

    def test_cli_parses_quick_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--quick"])
        assert args.quick is True
        args = build_parser().parse_args(["bench"])
        assert args.quick is False

    def test_unwritable_path_fails_fast(self, tmp_path, capsys):
        assert main(str(tmp_path / "missing" / "x.json"), quick=True) == 1
        assert "cannot write" in capsys.readouterr().out
