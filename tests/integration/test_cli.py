"""CLI smoke tests (fast configurations)."""

import csv

import pytest

from repro.cli import build_parser, main, write_csv


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"
        for command in ("train", "sample", "evaluate", "attack"):
            sub_args = ["--dataset", "adult"]
            if command == "sample":
                sub_args += ["--model", "m.npz", "--out", "o.csv"]
            parsed = parser.parse_args([command, *sub_args])
            assert parsed.command == command

    def test_serving_subcommands_registered(self):
        parser = build_parser()
        assert parser.parse_args(["serve-registry"]).command == "serve-registry"
        args = parser.parse_args([
            "synth", "--model-name", "m", "-n", "50", "--out", "o.csv",
            "--workers", "2",
        ])
        assert args.command == "synth"
        assert args.workers == 2
        assert args.shard_rows == 8192

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--dataset", "census"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("lacity", "adult", "health", "airline"):
            assert name in out

    def test_train_sample_round_trip(self, tmp_path, capsys):
        model = str(tmp_path / "model.npz")
        out_csv = str(tmp_path / "synthetic.csv")
        common = ["--dataset", "adult", "--rows", "300", "--seed", "5",
                  "--epochs", "1", "--base-channels", "8"]
        assert main(["train", *common, "--model", model]) == 0
        assert main(["sample", *common, "--model", model,
                     "-n", "25", "--out", out_csv]) == 0
        with open(out_csv) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 26  # header + 25 samples
        assert rows[0][0] == "age"

    def test_evaluate_report(self, capsys):
        code = main(["evaluate", "--dataset", "adult", "--rows", "300",
                     "--seed", "5", "--epochs", "1", "--base-channels", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DCR" in out
        assert "model compatibility" in out


class TestServingCommands:
    def test_bad_register_name_fails_before_training(self, tmp_path):
        from repro.serve import RegistryError

        registry = str(tmp_path / "registry")
        with pytest.raises(RegistryError, match="invalid model name"):
            main(["train", "--dataset", "adult", "--rows", "300",
                  "--epochs", "1", "--base-channels", "8",
                  "--register", "bad/name", "--registry", registry])
        assert not (tmp_path / "registry").exists()

    def test_train_register_list_synth_round_trip(self, tmp_path, capsys):
        registry = str(tmp_path / "registry")
        common = ["--dataset", "adult", "--rows", "300", "--seed", "5",
                  "--epochs", "1", "--base-channels", "8"]
        assert main(["train", *common, "--register", "adult-tiny",
                     "--registry", registry]) == 0
        assert main(["serve-registry", "--registry", registry]) == 0
        out = capsys.readouterr().out
        assert "adult-tiny" in out
        assert "tablegan" in out

        assert main(["serve-registry", "--registry", registry,
                     "--show", "adult-tiny"]) == 0
        assert '"format_version"' in capsys.readouterr().out

        # synth output is a pure function of the seed, never of --workers.
        out_a = str(tmp_path / "a.csv")
        out_b = str(tmp_path / "b.csv")
        base = ["synth", "--registry", registry, "--model-name", "adult-tiny",
                "-n", "60", "--seed", "3", "--shard-rows", "25"]
        assert main([*base, "--out", out_a, "--workers", "1"]) == 0
        assert main([*base, "--out", out_b, "--workers", "2"]) == 0
        with open(out_a) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 61  # header + 60 samples
        assert open(out_a).read() == open(out_b).read()

        out_npz = str(tmp_path / "c.npz")
        assert main([*base, "--out", out_npz, "--workers", "2"]) == 0
        from repro.serve import read_npz_chunks

        values, columns = read_npz_chunks(out_npz)
        assert values.shape == (60, len(rows[0]))
        assert columns[0] == "age"

        assert main(["serve-registry", "--registry", registry,
                     "--delete", "adult-tiny"]) == 0
        assert main(["serve-registry", "--registry", registry]) == 0
        assert "empty" in capsys.readouterr().out


class TestWriteCsv:
    def test_decodes_categoricals(self, tmp_path, adult_bundle):
        path = tmp_path / "table.csv"
        write_csv(adult_bundle.train.head(3), str(path))
        with open(path) as handle:
            rows = list(csv.reader(handle))
        header = rows[0]
        sex_idx = header.index("sex")
        assert rows[1][sex_idx] in ("female", "male")
