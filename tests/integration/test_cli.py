"""CLI smoke tests (fast configurations)."""

import csv

import pytest

from repro.cli import build_parser, main, write_csv


class TestParser:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["datasets"])
        assert args.command == "datasets"
        for command in ("train", "sample", "evaluate", "attack"):
            sub_args = ["--dataset", "adult"]
            if command == "sample":
                sub_args += ["--model", "m.npz", "--out", "o.csv"]
            parsed = parser.parse_args([command, *sub_args])
            assert parsed.command == command

    def test_unknown_dataset_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["train", "--dataset", "census"])


class TestCommands:
    def test_datasets_listing(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("lacity", "adult", "health", "airline"):
            assert name in out

    def test_train_sample_round_trip(self, tmp_path, capsys):
        model = str(tmp_path / "model.npz")
        out_csv = str(tmp_path / "synthetic.csv")
        common = ["--dataset", "adult", "--rows", "300", "--seed", "5",
                  "--epochs", "1", "--base-channels", "8"]
        assert main(["train", *common, "--model", model]) == 0
        assert main(["sample", *common, "--model", model,
                     "-n", "25", "--out", out_csv]) == 0
        with open(out_csv) as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 26  # header + 25 samples
        assert rows[0][0] == "age"

    def test_evaluate_report(self, capsys):
        code = main(["evaluate", "--dataset", "adult", "--rows", "300",
                     "--seed", "5", "--epochs", "1", "--base-channels", "8"])
        assert code == 0
        out = capsys.readouterr().out
        assert "DCR" in out
        assert "model compatibility" in out


class TestWriteCsv:
    def test_decodes_categoricals(self, tmp_path, adult_bundle):
        path = tmp_path / "table.csv"
        write_csv(adult_bundle.train.head(3), str(path))
        with open(path) as handle:
            rows = list(csv.reader(handle))
        header = rows[0]
        sex_idx = header.index("sex")
        assert rows[1][sex_idx] in ("female", "male")
