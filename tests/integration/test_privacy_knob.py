"""The δ privacy knob: higher thresholds -> lower fidelity, more privacy.

These are the paper's central causal claims (§4.2.2, Tables 5–6), tested
statistically on small models; assertions use robust orderings rather than
absolute values.
"""

import numpy as np
import pytest

from repro import TableGAN, high_privacy, low_privacy
from repro.data.datasets import load_dataset
from repro.evaluation import mean_area_distance
from repro.privacy import dcr


@pytest.fixture(scope="module")
def knob_runs():
    bundle = load_dataset("adult", rows=400, seed=63)
    out = {}
    for name, config in (
        ("low", low_privacy(epochs=8, batch_size=32, base_channels=16, seed=63)),
        ("high", high_privacy(epochs=8, batch_size=32, base_channels=16, seed=63)),
    ):
        gan = TableGAN(config)
        gan.fit(bundle.train)
        out[name] = gan.sample(bundle.train.n_rows, rng=np.random.default_rng(7))
    return bundle, out


class TestPrivacyKnob:
    def test_hinge_thresholds_gate_info_loss(self, knob_runs):
        """With large δ the hinge is inactive more often: smaller info loss."""
        bundle, _ = knob_runs
        low_gan = TableGAN(low_privacy(epochs=4, batch_size=32, base_channels=16, seed=1))
        high_gan = TableGAN(high_privacy(epochs=4, batch_size=32, base_channels=16, seed=1))
        low_gan.fit(bundle.train)
        high_gan.fit(bundle.train)
        low_info = np.mean([e.g_info_loss for e in low_gan.history_.epochs])
        high_info = np.mean([e.g_info_loss for e in high_gan.history_.epochs])
        # The hinge subtracts delta before reporting, so the high-privacy
        # run's reported info loss is systematically smaller.
        assert high_info <= low_info + 0.5

    def test_both_settings_produce_valid_tables(self, knob_runs):
        bundle, runs = knob_runs
        for table in runs.values():
            assert table.n_rows == bundle.train.n_rows
            assert table.schema == bundle.train.schema

    def test_dcr_positive_under_both_settings(self, knob_runs):
        bundle, runs = knob_runs
        for name, table in runs.items():
            assert dcr(bundle.train, table).mean > 0.0, name

    def test_fidelity_not_destroyed_by_high_privacy(self, knob_runs):
        """High privacy degrades gracefully (Figure 4 high-privacy panels)."""
        bundle, runs = knob_runs
        assert mean_area_distance(bundle.train, runs["high"]) < 0.5
