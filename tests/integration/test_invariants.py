"""Property-based invariants across the full pipeline.

Hypothesis drives configurations and schemas through the table-GAN
pipeline and checks structural invariants the paper's workflow depends on:
encoded records stay in [-1, 1], decoded tables are always schema-valid,
training never emits non-finite losses, and sampling respects training
ranges.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import TableGAN, TableGanConfig
from repro.data.encoding import TableCodec
from repro.data.matrixizer import Matrixizer
from repro.data.schema import ColumnKind, ColumnRole, ColumnSpec, TableSchema
from repro.data.table import Table


@st.composite
def small_tables(draw):
    """Random small tables with mixed column kinds and a binary label."""
    n_rows = draw(st.integers(20, 60))
    n_continuous = draw(st.integers(1, 4))
    n_categorical = draw(st.integers(0, 2))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)

    columns, data = [], []
    for i in range(n_continuous):
        columns.append(ColumnSpec(f"c{i}", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE))
        scale = 10.0 ** draw(st.integers(-2, 5))
        data.append(rng.normal(0.0, scale, n_rows))
    for i in range(n_categorical):
        n_cats = draw(st.integers(2, 5))
        columns.append(ColumnSpec(
            f"k{i}", ColumnKind.CATEGORICAL, ColumnRole.QID,
            tuple(f"v{j}" for j in range(n_cats)),
        ))
        data.append(rng.integers(0, n_cats, n_rows).astype(float))
    columns.append(ColumnSpec("label", ColumnKind.DISCRETE, ColumnRole.LABEL))
    data.append((rng.random(n_rows) > 0.5).astype(float))
    return Table(np.column_stack(data), TableSchema(columns))


class TestEncodingInvariants:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(table=small_tables())
    def test_encode_decode_round_trip(self, table):
        codec = TableCodec().fit(table)
        encoded = codec.encode(table)
        assert encoded.min() >= -1.0 - 1e-9
        assert encoded.max() <= 1.0 + 1e-9
        decoded = codec.decode(encoded)
        scale = 1.0 + np.abs(table.values).max()
        assert np.allclose(decoded.values, table.values, atol=1e-6 * scale)

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(table=small_tables())
    def test_matrixizer_preserves_encoding(self, table):
        codec = TableCodec().fit(table)
        encoded = codec.encode(table)
        matrixizer = Matrixizer(table.n_columns)
        back = matrixizer.to_records(matrixizer.to_matrices(encoded))
        assert np.allclose(back, encoded)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(table=small_tables())
    def test_decoded_noise_is_always_schema_valid(self, table):
        """Decoding arbitrary generator output yields a valid table."""
        codec = TableCodec().fit(table)
        rng = np.random.default_rng(0)
        noise = rng.uniform(-1.5, 1.5, (30, table.n_columns))
        decoded = codec.decode(noise)
        for spec in table.schema.columns:
            col = decoded.column(spec.name)
            assert np.all(np.isfinite(col))
            if spec.kind is ColumnKind.CATEGORICAL:
                assert col.min() >= 0
                assert col.max() <= spec.n_categories - 1
            if spec.kind in (ColumnKind.DISCRETE, ColumnKind.CATEGORICAL):
                assert np.allclose(col, np.rint(col))


class TestTrainingInvariants:
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(
        table=small_tables(),
        delta=st.sampled_from([0.0, 0.2]),
        use_classifier=st.booleans(),
    )
    def test_training_losses_always_finite(self, table, delta, use_classifier):
        config = TableGanConfig(
            delta_mean=delta, delta_sd=delta, epochs=1, batch_size=16,
            base_channels=8, use_classifier=use_classifier, seed=0,
        )
        gan = TableGAN(config)
        gan.fit(table)
        for epoch in gan.history_.epochs:
            for value in (epoch.d_loss, epoch.g_adv_loss, epoch.g_info_loss,
                          epoch.g_class_loss, epoch.c_loss):
                assert np.isfinite(value)
        sample = gan.sample(10)
        assert np.all(np.isfinite(sample.values))


class TestFailureInjection:
    def test_non_finite_training_data_rejected_by_codec(self, adult_bundle):
        table = adult_bundle.train
        values = table.values.copy()
        values[0, 0] = np.nan
        bad = table.with_values(values)
        codec = TableCodec().fit(bad)
        encoded = codec.encode(bad)
        # NaN propagates visibly rather than silently corrupting ranges.
        assert np.isnan(encoded[0, 0])

    def test_sampling_more_rows_than_training(self, trained_gan, adult_bundle):
        """Synthesis is not limited by the training row count."""
        syn = trained_gan.sample(3 * adult_bundle.train.n_rows)
        assert syn.n_rows == 3 * adult_bundle.train.n_rows

    def test_single_column_table_trains(self):
        schema = TableSchema([
            ColumnSpec("x", ColumnKind.CONTINUOUS, ColumnRole.SENSITIVE),
        ])
        rng = np.random.default_rng(0)
        table = Table(rng.normal(0, 1, (40, 1)), schema)
        gan = TableGAN(TableGanConfig(
            epochs=1, batch_size=16, base_channels=8, seed=0,
        ))
        gan.fit(table)
        assert gan.classifier_ is None  # no label column
        assert gan.sample(5).n_rows == 5
