"""End-to-end pipeline: the paper's full workflow (Figure 1) on tiny data.

Original table -> train table-GAN -> synthesize -> evaluate (statistical
similarity, model compatibility, DCR) -> compare against a baseline.
"""

import numpy as np
import pytest

from repro import TableGAN, low_privacy
from repro.baselines import ArxAnonymizer
from repro.data.datasets import load_dataset
from repro.evaluation import (
    classification_compatibility,
    compare_cdf,
    mean_area_distance,
)
from repro.evaluation.compatibility import classifier_suite
from repro.privacy import dcr, dcr_sensitive_only


@pytest.fixture(scope="module")
def pipeline():
    bundle = load_dataset("lacity", rows=500, seed=31)
    gan = TableGAN(low_privacy(epochs=8, batch_size=32, base_channels=16, seed=31))
    gan.fit(bundle.train)
    synthetic = gan.sample(bundle.train.n_rows, rng=np.random.default_rng(1))
    return bundle, gan, synthetic


class TestWorkflow:
    def test_synthetic_table_matches_original_size(self, pipeline):
        bundle, _, synthetic = pipeline
        # §5.1.1: synthetic tables have the same number of records.
        assert synthetic.n_rows == bundle.train.n_rows
        assert synthetic.schema == bundle.train.schema

    def test_statistical_similarity_beats_random(self, pipeline):
        bundle, _, synthetic = pipeline
        rng = np.random.default_rng(0)
        noise_values = np.column_stack([
            rng.uniform(col.min(), col.max(), bundle.train.n_rows)
            for col in bundle.train.values.T
        ])
        noise = bundle.train.with_values(noise_values)
        assert mean_area_distance(bundle.train, synthetic) < mean_area_distance(
            bundle.train, noise
        )

    def test_salary_cdf_reasonably_close(self, pipeline):
        bundle, _, synthetic = pipeline
        c = compare_cdf(bundle.train, synthetic, "base_salary")
        assert c.area_distance < 0.35

    def test_dcr_nonzero_on_all_and_sensitive(self, pipeline):
        bundle, _, synthetic = pipeline
        assert dcr(bundle.train, synthetic).mean > 0.05
        assert dcr_sensitive_only(bundle.train, synthetic).mean > 0.05

    def test_model_compatibility_better_than_label_noise(self, pipeline):
        """Models trained on synthetic data must beat chance on real tests."""
        bundle, _, synthetic = pipeline
        suite = [classifier_suite()[3]]  # one mid-depth decision tree
        report = classification_compatibility(
            bundle.train, synthetic, bundle.test, suite=suite
        )
        point = report.points[0]
        assert point.score_original > 0.8   # the task is learnable
        assert point.score_released > 0.5   # synthetic carries the signal

    def test_table_gan_dcr_dominates_arx_on_sensitive(self, pipeline):
        """The headline Table 5 contrast in one assertion."""
        bundle, _, synthetic = pipeline
        anon = ArxAnonymizer(method="k_t", k=5, t=0.9).anonymize(bundle.train)
        gan_dcr = dcr_sensitive_only(bundle.train, synthetic).mean
        arx_dcr = dcr_sensitive_only(bundle.train, anon).mean
        assert arx_dcr == 0.0
        assert gan_dcr > 0.0


class TestReuse:
    def test_generator_reuse_after_save(self, pipeline, tmp_path):
        bundle, gan, _ = pipeline
        path = tmp_path / "gan.npz"
        gan.save(path)
        restored = TableGAN(gan.config).load_generator(path, bundle.train)
        syn = restored.sample(50, rng=np.random.default_rng(5))
        assert syn.n_rows == 50
        assert syn.schema == bundle.train.schema
