"""FaultPlan semantics: arming, firing order, payload actions, installation."""

import threading
import time

import pytest

from repro.utils.faults import (
    ACTIONS,
    POINTS,
    FaultError,
    FaultPlan,
    fault_bytes,
    fault_point,
    inject,
)

pytestmark = pytest.mark.chaos


class TestArmValidation:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultPlan().arm("no.such.seam")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            FaultPlan().arm("batcher.tick", "explode")

    def test_negative_after_rejected(self):
        with pytest.raises(ValueError, match="after"):
            FaultPlan().arm("batcher.tick", after=-1)

    def test_zero_times_rejected(self):
        with pytest.raises(ValueError, match="times"):
            FaultPlan().arm("batcher.tick", times=0)

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultPlan().arm("socket.send", "truncate", fraction=1.5)

    def test_arm_is_chainable(self):
        plan = FaultPlan().arm("batcher.tick").arm("socket.send", "truncate")
        assert isinstance(plan, FaultPlan)

    def test_every_compiled_point_and_action_arms(self):
        plan = FaultPlan()
        for point in POINTS:
            for action in ACTIONS:
                plan.arm(point, action)

    def test_parallel_reduce_seam_is_registered(self):
        # The data-parallel trainer's gradient publish/reduce path must stay
        # injectable — tests/core/test_parallel.py arms this point.
        assert "parallel.reduce" in POINTS


class TestControlSeams:
    def test_disarmed_point_is_a_no_op(self):
        fault_point("batcher.tick")  # no plan installed: must not raise

    def test_unarmed_point_passes_through_installed_plan(self):
        with FaultPlan().arm("sink.write"):
            fault_point("batcher.tick")

    def test_raise_fires_on_first_hit_by_default(self):
        with FaultPlan().arm("batcher.tick") as plan:
            with pytest.raises(FaultError) as excinfo:
                fault_point("batcher.tick")
        assert excinfo.value.point == "batcher.tick"
        assert plan.hits("batcher.tick") == 1
        assert plan.fired("batcher.tick") == 1

    def test_after_skips_free_traversals(self):
        with FaultPlan().arm("batcher.tick", after=2) as plan:
            fault_point("batcher.tick")
            fault_point("batcher.tick")
            with pytest.raises(FaultError):
                fault_point("batcher.tick")
        assert plan.hits("batcher.tick") == 3
        assert plan.fired("batcher.tick") == 1

    def test_times_disarms_after_n_firings(self):
        with FaultPlan().arm("batcher.tick", times=2) as plan:
            for _ in range(2):
                with pytest.raises(FaultError):
                    fault_point("batcher.tick")
            fault_point("batcher.tick")  # rule exhausted: free
        assert plan.fired("batcher.tick") == 2
        assert plan.hits("batcher.tick") == 3

    def test_times_none_fires_forever(self):
        with FaultPlan().arm("batcher.tick", times=None) as plan:
            for _ in range(5):
                with pytest.raises(FaultError):
                    fault_point("batcher.tick")
        assert plan.fired("batcher.tick") == 5

    def test_custom_exception_is_raised(self):
        marker = ConnectionResetError("injected reset")
        with FaultPlan().arm("socket.send", exc=marker):
            with pytest.raises(ConnectionResetError, match="injected reset"):
                fault_point("socket.send")

    def test_delay_sleeps_then_continues(self):
        with FaultPlan().arm("batcher.tick", "delay", delay_s=0.05) as plan:
            started = time.perf_counter()
            fault_point("batcher.tick")
            elapsed = time.perf_counter() - started
        assert elapsed >= 0.04
        assert plan.fired("batcher.tick") == 1

    def test_truncate_at_control_seam_passes_through(self):
        with FaultPlan().arm("batcher.tick", "truncate") as plan:
            fault_point("batcher.tick")  # payload action, nothing to cut
        assert plan.fired("batcher.tick") == 1


class TestPayloadSeams:
    def test_disarmed_returns_identity(self):
        data = b"payload"
        assert fault_bytes("socket.send", data) is data

    def test_truncate_cuts_to_fraction(self):
        with FaultPlan().arm("socket.send", "truncate", fraction=0.25):
            assert fault_bytes("socket.send", b"x" * 100) == b"x" * 25

    def test_truncate_fraction_zero_empties_payload(self):
        with FaultPlan().arm("socket.send", "truncate", fraction=0.0):
            assert fault_bytes("socket.send", b"abcdef") == b""

    def test_corrupt_flips_exactly_one_byte(self):
        data = bytes(range(64))
        with FaultPlan(seed=3).arm("socket.send", "corrupt"):
            mangled = fault_bytes("socket.send", data)
        assert len(mangled) == len(data)
        diffs = [i for i, (a, b) in enumerate(zip(data, mangled)) if a != b]
        assert len(diffs) == 1
        assert mangled[diffs[0]] == data[diffs[0]] ^ 0xFF

    def test_corrupt_is_deterministic_per_seed(self):
        data = bytes(range(64))

        def run(seed):
            with FaultPlan(seed=seed).arm("socket.send", "corrupt"):
                return fault_bytes("socket.send", data)

        assert run(7) == run(7)

    def test_corrupt_empty_payload_is_identity(self):
        with FaultPlan().arm("socket.send", "corrupt"):
            assert fault_bytes("socket.send", b"") == b""

    def test_raise_fires_at_payload_seam(self):
        with FaultPlan().arm("socket.send"):
            with pytest.raises(FaultError):
                fault_bytes("socket.send", b"data")


class TestInstallation:
    def test_inject_restores_previous_plan(self):
        outer = FaultPlan().arm("batcher.tick", after=100)
        inner = FaultPlan().arm("batcher.tick")
        with inject(outer):
            with inject(inner):
                with pytest.raises(FaultError):
                    fault_point("batcher.tick")
            fault_point("batcher.tick")  # outer plan back: after=100, free
        assert outer.hits("batcher.tick") == 1
        fault_point("batcher.tick")  # fully uninstalled
        assert outer.hits("batcher.tick") == 1

    def test_plan_uninstalled_after_exception(self):
        plan = FaultPlan().arm("batcher.tick")
        with pytest.raises(FaultError):
            with plan:
                fault_point("batcher.tick")
        fault_point("batcher.tick")  # must be disarmed again
        assert plan.hits("batcher.tick") == 1

    def test_introspection_of_unarmed_point_is_zero(self):
        plan = FaultPlan()
        assert plan.hits("batcher.tick") == 0
        assert plan.fired("batcher.tick") == 0

    def test_strikes_are_thread_safe(self):
        plan = FaultPlan().arm("batcher.tick", times=None)
        errors = []

        def hammer():
            for _ in range(200):
                try:
                    fault_point("batcher.tick")
                except FaultError:
                    errors.append(1)

        with plan:
            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert plan.hits("batcher.tick") == 800
        assert plan.fired("batcher.tick") == 800
        assert len(errors) == 800
