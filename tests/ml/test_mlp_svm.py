"""MLP classifier and linear SVM."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy, roc_auc
from repro.ml.mlp import MLPClassifier
from repro.ml.svm import LinearSVC


def gaussians(rng, n=400, gap=2.0, dims=4):
    X = np.vstack([
        rng.normal(0.0, 1.0, (n // 2, dims)),
        rng.normal(gap, 1.0, (n // 2, dims)),
    ])
    y = np.array([0.0] * (n // 2) + [1.0] * (n // 2))
    order = rng.permutation(n)
    return X[order], y[order]


class TestMLP:
    def test_separates_gaussians(self, rng):
        X, y = gaussians(rng)
        model = MLPClassifier(epochs=40, seed=0).fit(X[:300], y[:300])
        assert accuracy(y[300:], model.predict(X[300:])) > 0.9

    def test_learns_nonlinear_boundary(self, rng):
        X = rng.uniform(-1, 1, (500, 2))
        y = ((X**2).sum(axis=1) < 0.4).astype(float)
        model = MLPClassifier(hidden_sizes=(32, 16), epochs=120, seed=0).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.9

    def test_predict_proba_valid(self, rng):
        X, y = gaussians(rng, n=100)
        model = MLPClassifier(epochs=10, seed=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert np.all((proba >= 0) & (proba <= 1))

    def test_decision_function_ranks_well(self, rng):
        X, y = gaussians(rng)
        model = MLPClassifier(epochs=30, seed=0).fit(X, y)
        assert roc_auc(y, model.decision_function(X)) > 0.95

    def test_arbitrary_binary_class_values(self, rng):
        X, y = gaussians(rng, n=200)
        y = np.where(y == 1, 7.0, 3.0)
        model = MLPClassifier(epochs=20, seed=0).fit(X, y)
        assert set(np.unique(model.predict(X))) <= {3.0, 7.0}

    def test_rejects_multiclass(self, rng):
        with pytest.raises(ValueError, match="binary"):
            MLPClassifier().fit(rng.random((9, 2)), np.array([0, 1, 2] * 3))

    def test_rejects_bad_schedule(self, rng):
        with pytest.raises(ValueError):
            MLPClassifier(epochs=0).fit(rng.random((4, 2)), np.array([0, 1, 0, 1]))

    def test_deterministic_with_seed(self, rng):
        X, y = gaussians(rng, n=120)
        a = MLPClassifier(epochs=5, seed=4).fit(X, y).decision_function(X)
        b = MLPClassifier(epochs=5, seed=4).fit(X, y).decision_function(X)
        assert np.allclose(a, b)


class TestLinearSVC:
    def test_separates_gaussians(self, rng):
        X, y = gaussians(rng)
        model = LinearSVC(seed=0).fit(X[:300], y[:300])
        assert accuracy(y[300:], model.predict(X[300:])) > 0.9

    def test_margin_sign_matches_prediction(self, rng):
        X, y = gaussians(rng, n=200)
        model = LinearSVC(seed=0).fit(X, y)
        scores = model.decision_function(X)
        pred = model.predict(X)
        assert np.all((scores >= 0) == (pred == model.classes_[1]))

    def test_predict_proba_shape(self, rng):
        X, y = gaussians(rng, n=100)
        model = LinearSVC(seed=0).fit(X, y)
        proba = model.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_regularization_strength_changes_weights(self, rng):
        X, y = gaussians(rng, n=200)
        strong = LinearSVC(C=0.01, seed=0).fit(X, y)
        weak = LinearSVC(C=100.0, seed=0).fit(X, y)
        assert np.linalg.norm(strong.coef_) < np.linalg.norm(weak.coef_)

    def test_rejects_non_binary(self, rng):
        with pytest.raises(ValueError, match="binary"):
            LinearSVC().fit(rng.random((9, 2)), np.array([0, 1, 2] * 3))

    def test_rejects_bad_c(self):
        with pytest.raises(ValueError):
            LinearSVC(C=0.0).fit(np.zeros((4, 1)), np.array([0, 1, 0, 1]))
