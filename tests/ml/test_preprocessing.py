"""LabelEncoder and the scalers."""

import numpy as np
import pytest

from repro.ml.base import clone
from repro.ml.preprocessing import LabelEncoder, MinMaxScaler, StandardScaler
from repro.ml.tree import DecisionTreeClassifier


class TestLabelEncoder:
    def test_round_trip(self):
        enc = LabelEncoder()
        codes = enc.fit_transform(["b", "a", "c", "a"])
        assert np.array_equal(codes, [1.0, 0.0, 2.0, 0.0])
        assert enc.inverse_transform(codes) == ["b", "a", "c", "a"]

    def test_handles_generalized_interval_strings(self):
        """The paper label-encodes generalized QIDs like '4767*' / '<=40'."""
        enc = LabelEncoder().fit(["4767*", "4790*", "<=40", ">=50"])
        out = enc.transform(["<=40", "4767*"])
        assert out.shape == (2,)

    def test_unseen_value_raises(self):
        enc = LabelEncoder().fit(["a", "b"])
        with pytest.raises(KeyError, match="unseen"):
            enc.transform(["c"])

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            LabelEncoder().transform(["a"])


class TestStandardScaler:
    def test_zero_mean_unit_std(self, rng):
        X = rng.normal(5, 3, (200, 4))
        out = StandardScaler().fit_transform(X)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-10)

    def test_inverse_transform(self, rng):
        X = rng.normal(5, 3, (50, 3))
        scaler = StandardScaler().fit(X)
        assert np.allclose(scaler.inverse_transform(scaler.transform(X)), X)

    def test_constant_column_safe(self):
        X = np.column_stack([np.ones(10), np.arange(10.0)])
        out = StandardScaler().fit_transform(X)
        assert np.all(np.isfinite(out))


class TestMinMaxScaler:
    def test_unit_range(self, rng):
        X = rng.uniform(-50, 50, (100, 3))
        out = MinMaxScaler().fit_transform(X)
        assert np.allclose(out.min(axis=0), 0.0)
        assert np.allclose(out.max(axis=0), 1.0)

    def test_frozen_statistics(self, rng):
        X = rng.uniform(0, 1, (50, 2))
        scaler = MinMaxScaler().fit(X)
        out = scaler.transform(X * 10)  # new data may exceed [0, 1]
        assert out.max() > 1.0

    def test_constant_column_safe(self):
        X = np.full((5, 2), 3.0)
        out = MinMaxScaler().fit_transform(X)
        assert np.all(np.isfinite(out))


class TestClone:
    def test_clone_is_unfitted_copy(self):
        tree = DecisionTreeClassifier(max_depth=5, seed=3)
        copy = clone(tree)
        assert copy is not tree
        assert copy.get_params() == tree.get_params()
        assert getattr(copy, "root_", None) is None
