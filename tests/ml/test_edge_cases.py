"""Edge cases across the ML substrate that the evaluation sweeps can hit."""

import numpy as np
import pytest
from scipy import stats

from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import roc_auc
from repro.ml.mlp import MLPClassifier
from repro.ml.tree import DecisionTreeClassifier


class TestRocAucAgainstScipy:
    def test_matches_mannwhitney_relationship(self, rng):
        """AUC == U / (n_pos * n_neg) with scipy's Mann-Whitney U."""
        y = rng.integers(0, 2, 200).astype(float)
        scores = rng.standard_normal(200) + y  # informative scores
        pos_scores = scores[y == 1]
        neg_scores = scores[y == 0]
        u_stat, _ = stats.mannwhitneyu(pos_scores, neg_scores, alternative="two-sided")
        expected = u_stat / (pos_scores.size * neg_scores.size)
        assert roc_auc(y, scores) == pytest.approx(expected, abs=1e-10)

    def test_heavy_ties(self, rng):
        y = rng.integers(0, 2, 100).astype(float)
        scores = rng.integers(0, 3, 100).astype(float)  # only 3 levels
        pos = scores[y == 1]
        neg = scores[y == 0]
        u_stat, _ = stats.mannwhitneyu(pos, neg, alternative="two-sided")
        expected = u_stat / (pos.size * neg.size)
        assert roc_auc(y, scores) == pytest.approx(expected, abs=1e-10)


class TestForestClassAlignment:
    def test_proba_columns_follow_global_classes(self, rng):
        """Trees fit on bootstrap samples; probabilities must align to the
        forest-level class ordering even when labels are non-contiguous."""
        X = rng.uniform(-1, 1, (150, 2))
        y = np.where(X[:, 0] > 0, 7.0, 3.0)  # classes {3, 7}
        forest = RandomForestClassifier(n_estimators=8, seed=0).fit(X, y)
        assert np.array_equal(forest.classes_, [3.0, 7.0])
        proba = forest.predict_proba(X)
        pred = forest.predict(X)
        chosen = forest.classes_[np.argmax(proba, axis=1)]
        assert np.array_equal(pred, chosen)

    def test_tiny_dataset(self, rng):
        X = rng.uniform(-1, 1, (6, 2))
        y = np.array([0.0, 1.0, 0.0, 1.0, 0.0, 1.0])
        forest = RandomForestClassifier(n_estimators=3, seed=0).fit(X, y)
        assert forest.predict(X).shape == (6,)


class TestClassifiersOnDegenerateFeatures:
    """The released tables of weak baselines can have constant columns."""

    @pytest.mark.parametrize("model_cls,kwargs", [
        (DecisionTreeClassifier, {"max_depth": 3, "seed": 0}),
        (RandomForestClassifier, {"n_estimators": 4, "seed": 0}),
        (AdaBoostClassifier, {"n_estimators": 5, "seed": 0}),
        (MLPClassifier, {"epochs": 3, "seed": 0}),
    ])
    def test_constant_features_dont_crash(self, model_cls, kwargs, rng):
        X = np.ones((40, 3))
        y = (rng.random(40) > 0.5).astype(float)
        model = model_cls(**kwargs).fit(X, y)
        pred = model.predict(np.ones((5, 3)))
        assert pred.shape == (5,)
        assert set(np.unique(pred)) <= {0.0, 1.0}

    @pytest.mark.parametrize("model_cls,kwargs", [
        (DecisionTreeClassifier, {"max_depth": 3, "seed": 0}),
        (MLPClassifier, {"epochs": 3, "seed": 0}),
    ])
    def test_extreme_feature_scales(self, model_cls, kwargs, rng):
        """Mixed 1e-6 / 1e+9 column scales (raw tables!) must not break."""
        X = np.column_stack([
            rng.normal(0, 1e-6, 100),
            rng.normal(0, 1e9, 100),
            rng.normal(5, 1, 100),
        ])
        y = (X[:, 2] > 5).astype(float)
        model = model_cls(**kwargs).fit(X, y)
        assert np.all(np.isfinite(model.predict_proba(X)))
