"""CART decision trees: learning behaviour, limits, and weights."""

import numpy as np
import pytest

from repro.ml.metrics import accuracy
from repro.ml.tree import DecisionTreeClassifier, DecisionTreeRegressor


def xor_data(rng, n=400):
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)
    return X, y


class TestClassifier:
    def test_learns_axis_aligned_split(self, rng):
        X = rng.uniform(-1, 1, (200, 3))
        y = (X[:, 1] > 0.2).astype(float)
        tree = DecisionTreeClassifier(max_depth=2, seed=0).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.98

    def test_learns_xor_with_depth(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.95

    def test_depth_limit_respected(self, rng):
        X, y = xor_data(rng)
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        assert tree.depth() <= 3

    def test_stump_cannot_learn_xor(self, rng):
        X, y = xor_data(rng)
        stump = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        assert accuracy(y, stump.predict(X)) < 0.7

    def test_min_samples_leaf(self, rng):
        X = rng.uniform(-1, 1, (50, 2))
        y = (X[:, 0] > 0).astype(float)
        tree = DecisionTreeClassifier(min_samples_leaf=25, seed=0).fit(X, y)
        assert tree.depth() <= 1

    def test_predict_proba_rows_sum_to_one(self, rng):
        X, y = xor_data(rng, n=100)
        tree = DecisionTreeClassifier(max_depth=4, seed=0).fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape == (100, 2)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_sample_weights_bias_prediction(self, rng):
        # Two overlapping points, one heavily weighted.
        X = np.array([[0.0], [0.0]])
        y = np.array([0.0, 1.0])
        w = np.array([1.0, 100.0])
        tree = DecisionTreeClassifier(seed=0).fit(X, y, sample_weight=w)
        assert tree.predict(np.array([[0.0]]))[0] == 1.0

    def test_non_binary_labels(self, rng):
        X = rng.uniform(0, 3, (300, 1))
        y = np.floor(X[:, 0])
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.95

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DecisionTreeClassifier().predict(np.zeros((1, 2)))

    def test_length_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            DecisionTreeClassifier().fit(rng.random((5, 2)), np.zeros(4))

    def test_constant_features_yield_leaf(self):
        X = np.ones((20, 3))
        y = np.array([0.0, 1.0] * 10)
        tree = DecisionTreeClassifier(seed=0).fit(X, y)
        assert tree.depth() == 0


class TestRegressor:
    def test_learns_step_function(self, rng):
        X = rng.uniform(-1, 1, (300, 1))
        y = np.where(X[:, 0] > 0, 5.0, -5.0)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).mean() < 0.5

    def test_approximates_smooth_function(self, rng):
        X = rng.uniform(-3, 3, (600, 1))
        y = np.sin(X[:, 0])
        tree = DecisionTreeRegressor(max_depth=6).fit(X, y)
        assert np.abs(tree.predict(X) - y).mean() < 0.12

    def test_leaf_predicts_weighted_mean(self):
        X = np.ones((3, 1))
        y = np.array([0.0, 0.0, 3.0])
        w = np.array([1.0, 1.0, 2.0])
        tree = DecisionTreeRegressor().fit(X, y, sample_weight=w)
        assert tree.predict(X)[0] == pytest.approx(6.0 / 4.0)

    def test_depth_zero_predicts_mean(self, rng):
        X = rng.random((50, 2))
        y = rng.random(50)
        tree = DecisionTreeRegressor(max_depth=0).fit(X, y)
        assert np.allclose(tree.predict(X), y.mean())

    def test_get_set_params(self):
        tree = DecisionTreeRegressor(max_depth=4)
        assert tree.get_params()["max_depth"] == 4
        tree.set_params(max_depth=2)
        assert tree.max_depth == 2
        with pytest.raises(ValueError):
            tree.set_params(bogus=1)
