"""KFold and GridSearchCV."""

import numpy as np
import pytest

from repro.ml.metrics import f1_score
from repro.ml.model_selection import GridSearchCV, KFold, param_grid_iter
from repro.ml.tree import DecisionTreeClassifier


class TestKFold:
    def test_folds_partition_indices(self):
        folds = list(KFold(n_splits=5, seed=0).split(53))
        assert len(folds) == 5
        all_test = np.sort(np.concatenate([test for _, test in folds]))
        assert np.array_equal(all_test, np.arange(53))

    def test_train_test_disjoint(self):
        for train, test in KFold(n_splits=4, seed=1).split(40):
            assert np.intersect1d(train, test).size == 0
            assert train.size + test.size == 40

    def test_no_shuffle_is_contiguous(self):
        _, first_test = next(iter(KFold(n_splits=2, shuffle=False).split(10)))
        assert np.array_equal(first_test, np.arange(5))

    def test_rejects_too_few_samples(self):
        with pytest.raises(ValueError):
            list(KFold(n_splits=10).split(5))

    def test_rejects_one_split(self):
        with pytest.raises(ValueError):
            KFold(n_splits=1)


class TestParamGridIter:
    def test_cartesian_product(self):
        grid = list(param_grid_iter({"a": [1, 2], "b": ["x", "y", "z"]}))
        assert len(grid) == 6
        assert {"a": 1, "b": "x"} in grid

    def test_empty_grid(self):
        assert list(param_grid_iter({})) == [{}]


class TestGridSearchCV:
    def make_data(self, rng):
        X = rng.uniform(-1, 1, (300, 2))
        y = ((X[:, 0] > 0) ^ (X[:, 1] > 0)).astype(float)  # needs depth >= 2
        return X, y

    def test_selects_sufficient_depth(self, rng):
        X, y = self.make_data(rng)
        gs = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [1, 4]},
            cv=3,
            seed=0,
        )
        gs.fit(X, y)
        assert gs.best_params_["max_depth"] == 4
        assert gs.best_score_ > 0.8

    def test_results_cover_grid(self, rng):
        X, y = self.make_data(rng)
        gs = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [1, 2, 3]},
            cv=3,
            seed=0,
        ).fit(X, y)
        assert len(gs.results_) == 3

    def test_custom_scorer(self, rng):
        X, y = self.make_data(rng)
        gs = GridSearchCV(
            DecisionTreeClassifier(seed=0),
            {"max_depth": [1, 4]},
            cv=3,
            scorer=f1_score,
            seed=0,
        ).fit(X, y)
        assert gs.best_params_["max_depth"] == 4

    def test_best_estimator_refit_on_all_data(self, rng):
        X, y = self.make_data(rng)
        gs = GridSearchCV(
            DecisionTreeClassifier(seed=0), {"max_depth": [4]}, cv=3, seed=0
        ).fit(X, y)
        assert gs.predict(X).shape == (300,)
        assert gs.predict_proba(X).shape[0] == 300

    def test_unfitted_predict_raises(self):
        gs = GridSearchCV(DecisionTreeClassifier(), {"max_depth": [1]})
        with pytest.raises(RuntimeError):
            gs.predict(np.zeros((1, 2)))
