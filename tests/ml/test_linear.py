"""Linear regression family: coefficient recovery and robustness."""

import numpy as np
import pytest

from repro.ml.linear import (
    HuberRegressor,
    Lasso,
    LinearRegression,
    PassiveAggressiveRegressor,
)
from repro.ml.metrics import mean_relative_error


def linear_data(rng, n=300, noise=0.1):
    X = rng.standard_normal((n, 4))
    coefs = np.array([3.0, -2.0, 0.0, 0.5])
    y = X @ coefs + 10.0 + rng.normal(0, noise, n)
    return X, y, coefs


class TestLinearRegression:
    def test_recovers_coefficients(self, rng):
        X, y, coefs = linear_data(rng, noise=0.01)
        model = LinearRegression().fit(X, y)
        # Model fits in standardized space; compare on predictions.
        assert mean_relative_error(y, model.predict(X)) < 0.01

    def test_exact_on_noiseless_data(self, rng):
        X, y, _ = linear_data(rng, noise=0.0)
        model = LinearRegression().fit(X, y)
        assert np.allclose(model.predict(X), y, atol=1e-8)

    def test_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            LinearRegression().fit(rng.random((5, 2)), np.zeros(4))


class TestLasso:
    def test_shrinks_irrelevant_coefficient(self, rng):
        X, y, _ = linear_data(rng, n=500, noise=0.05)
        model = Lasso(alpha=0.05).fit(X, y)
        # True third coefficient is 0; Lasso should drive it to (near) zero.
        assert abs(model.coef_[2]) < 0.02
        assert abs(model.coef_[0]) > 0.5

    def test_large_alpha_zeroes_everything(self, rng):
        X, y, _ = linear_data(rng)
        model = Lasso(alpha=100.0).fit(X, y)
        assert np.allclose(model.coef_, 0.0, atol=1e-8)

    def test_alpha_zero_matches_ols(self, rng):
        X, y, _ = linear_data(rng, noise=0.01)
        lasso = Lasso(alpha=0.0, max_iter=2000).fit(X, y)
        ols = LinearRegression().fit(X, y)
        assert np.allclose(lasso.predict(X), ols.predict(X), atol=0.05)

    def test_rejects_negative_alpha(self, rng):
        X, y, _ = linear_data(rng, n=20)
        with pytest.raises(ValueError):
            Lasso(alpha=-1.0).fit(X, y)


class TestPassiveAggressive:
    def test_fits_linear_data(self, rng):
        X, y, _ = linear_data(rng, noise=0.05)
        model = PassiveAggressiveRegressor(epochs=20, seed=0).fit(X, y)
        assert mean_relative_error(y, model.predict(X)) < 0.05

    def test_epsilon_tube_ignores_small_errors(self, rng):
        X, y, _ = linear_data(rng, n=100)
        # With a huge epsilon no update ever triggers: coefficients stay 0.
        model = PassiveAggressiveRegressor(epsilon=1e6, seed=0).fit(X, y)
        assert np.allclose(model.coef_, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            PassiveAggressiveRegressor(C=0.0).fit(np.zeros((4, 1)), np.zeros(4))
        with pytest.raises(ValueError):
            PassiveAggressiveRegressor(epochs=0).fit(np.zeros((4, 1)), np.zeros(4))


class TestHuber:
    def test_fits_clean_data(self, rng):
        X, y, _ = linear_data(rng, noise=0.05)
        model = HuberRegressor().fit(X, y)
        assert mean_relative_error(y, model.predict(X)) < 0.05

    def test_robust_to_outliers(self, rng):
        X, y, _ = linear_data(rng, n=300, noise=0.05)
        y_dirty = y.copy()
        y_dirty[:15] += 500.0  # gross outliers
        huber = HuberRegressor(delta=1.0).fit(X, y_dirty)
        ols = LinearRegression().fit(X, y_dirty)
        clean_mre_huber = mean_relative_error(y[15:], huber.predict(X[15:]))
        clean_mre_ols = mean_relative_error(y[15:], ols.predict(X[15:]))
        assert clean_mre_huber < clean_mre_ols

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            HuberRegressor(delta=0.0).fit(np.zeros((4, 1)), np.zeros(4))
