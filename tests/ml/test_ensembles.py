"""Random forest and AdaBoost ensembles."""

import numpy as np
import pytest

from repro.ml.boosting import AdaBoostClassifier
from repro.ml.forest import RandomForestClassifier
from repro.ml.metrics import accuracy
from repro.ml.tree import DecisionTreeClassifier


def two_moons_like(rng, n=400):
    """Noisy nonlinear binary data a single stump cannot fit."""
    X = rng.uniform(-1, 1, (n, 2))
    y = ((X[:, 0] ** 2 + X[:, 1]) > 0.3).astype(float)
    flip = rng.random(n) < 0.05
    y[flip] = 1 - y[flip]
    return X, y


class TestRandomForest:
    def test_beats_single_shallow_tree(self, rng):
        X, y = two_moons_like(rng)
        tree = DecisionTreeClassifier(max_depth=3, seed=0).fit(X, y)
        forest = RandomForestClassifier(n_estimators=25, max_depth=6, seed=0).fit(X, y)
        assert accuracy(y, forest.predict(X)) >= accuracy(y, tree.predict(X))

    def test_generalizes(self, rng):
        X, y = two_moons_like(rng, n=600)
        forest = RandomForestClassifier(n_estimators=20, seed=0).fit(X[:400], y[:400])
        assert accuracy(y[400:], forest.predict(X[400:])) > 0.85

    def test_predict_proba_normalized(self, rng):
        X, y = two_moons_like(rng, n=100)
        forest = RandomForestClassifier(n_estimators=5, seed=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_deterministic_with_seed(self, rng):
        X, y = two_moons_like(rng, n=150)
        a = RandomForestClassifier(n_estimators=5, seed=9).fit(X, y).predict(X)
        b = RandomForestClassifier(n_estimators=5, seed=9).fit(X, y).predict(X)
        assert np.array_equal(a, b)

    def test_without_bootstrap(self, rng):
        X, y = two_moons_like(rng, n=150)
        forest = RandomForestClassifier(n_estimators=5, bootstrap=False, seed=0).fit(X, y)
        assert accuracy(y, forest.predict(X)) > 0.8

    def test_rejects_zero_estimators(self, rng):
        with pytest.raises(ValueError):
            RandomForestClassifier(n_estimators=0).fit(rng.random((10, 2)), np.zeros(10))

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict(np.zeros((1, 2)))


class TestAdaBoost:
    def test_stumps_combine_beyond_single_stump(self, rng):
        X, y = two_moons_like(rng)
        stump = DecisionTreeClassifier(max_depth=1, seed=0).fit(X, y)
        boosted = AdaBoostClassifier(n_estimators=40, seed=0).fit(X, y)
        assert accuracy(y, boosted.predict(X)) > accuracy(y, stump.predict(X))

    def test_training_error_decreases_with_rounds(self, rng):
        X, y = two_moons_like(rng)
        few = AdaBoostClassifier(n_estimators=3, seed=0).fit(X, y)
        many = AdaBoostClassifier(n_estimators=50, seed=0).fit(X, y)
        assert accuracy(y, many.predict(X)) >= accuracy(y, few.predict(X))

    def test_early_stop_on_perfect_learner(self, rng):
        X = rng.uniform(-1, 1, (100, 1))
        y = (X[:, 0] > 0).astype(float)  # one stump solves it
        boosted = AdaBoostClassifier(n_estimators=50, seed=0).fit(X, y)
        assert len(boosted.estimators_) == 1
        assert accuracy(y, boosted.predict(X)) == 1.0

    def test_predict_proba_normalized(self, rng):
        X, y = two_moons_like(rng, n=120)
        boosted = AdaBoostClassifier(n_estimators=10, seed=0).fit(X, y)
        proba = boosted.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)

    def test_learning_rate_validation(self):
        with pytest.raises(ValueError):
            AdaBoostClassifier(learning_rate=0.0).fit(np.zeros((4, 1)), np.array([0, 1, 0, 1]))

    def test_single_class_degrades_to_constant(self, rng):
        """Single-class training data yields a constant predictor, not a crash.

        The model-compatibility sweeps feed degraded synthetic tables whose
        label may have collapsed; the evaluation must still run.
        """
        model = AdaBoostClassifier().fit(rng.random((10, 2)), np.zeros(10))
        pred = model.predict(rng.random((5, 2)))
        assert np.all(pred == 0.0)
        assert model.predict_proba(rng.random((5, 2))).shape == (5, 1)
