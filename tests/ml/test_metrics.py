"""Metrics: hand-checked values and invariance properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ml.metrics import (
    accuracy,
    confusion_counts,
    f1_score,
    mean_relative_error,
    mean_squared_error,
    precision,
    r2_score,
    recall,
    roc_auc,
)


class TestClassificationMetrics:
    def test_confusion_counts(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        assert confusion_counts(y_true, y_pred) == (2, 1, 1, 1)

    def test_precision_recall_f1_hand_checked(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 1, 0, 1])
        assert precision(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)

    def test_perfect_and_zero(self):
        y = np.array([0, 1, 1])
        assert f1_score(y, y) == 1.0
        assert f1_score(y, 1 - y) == 0.0

    def test_no_positive_predictions(self):
        assert precision(np.array([1, 1]), np.array([0, 0])) == 0.0
        assert f1_score(np.array([1, 1]), np.array([0, 0])) == 0.0

    def test_accuracy(self):
        assert accuracy([1, 0, 1], [1, 1, 1]) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            f1_score([], [])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            f1_score([1, 0], [1])


class TestRocAuc:
    def test_perfect_separation(self):
        assert roc_auc([0, 0, 1, 1], [0.1, 0.2, 0.8, 0.9]) == 1.0

    def test_inverted_scores(self):
        assert roc_auc([0, 0, 1, 1], [0.9, 0.8, 0.2, 0.1]) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, 2000)
        scores = rng.random(2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_handled(self):
        # All scores equal: AUC must be exactly 0.5 by symmetry.
        assert roc_auc([0, 1, 0, 1], [0.5, 0.5, 0.5, 0.5]) == pytest.approx(0.5)

    def test_single_class_returns_half(self):
        assert roc_auc([1, 1, 1], [0.1, 0.5, 0.9]) == 0.5

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_monotone_transform_invariance(self, seed):
        """AUC depends only on score ranks."""
        rng = np.random.default_rng(seed)
        y = rng.integers(0, 2, 50)
        scores = rng.standard_normal(50)
        a = roc_auc(y, scores)
        b = roc_auc(y, np.exp(scores))  # strictly monotone transform
        assert a == pytest.approx(b)


class TestRegressionMetrics:
    def test_mre_hand_checked(self):
        assert mean_relative_error([10.0, 20.0], [11.0, 18.0]) == pytest.approx(
            (0.1 + 0.1) / 2
        )

    def test_mre_zero_target_guard(self):
        value = mean_relative_error([0.0, 10.0], [1.0, 10.0])
        assert np.isfinite(value)

    def test_mse(self):
        assert mean_squared_error([1.0, 2.0], [2.0, 4.0]) == pytest.approx(2.5)

    def test_r2_perfect_and_mean(self):
        y = np.array([1.0, 2.0, 3.0])
        assert r2_score(y, y) == 1.0
        assert r2_score(y, np.full(3, y.mean())) == pytest.approx(0.0)

    def test_r2_constant_target(self):
        assert r2_score([2.0, 2.0], [1.0, 3.0]) == 0.0
