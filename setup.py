"""Legacy setuptools shim.

The offline evaluation environment has no ``wheel`` package, so PEP-517
editable installs fail; this shim lets ``pip install -e .`` fall back to the
classic ``setup.py develop`` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
