"""Quickstart: synthesize a table with table-GAN in ~30 lines.

Trains a low-privacy table-GAN on the (synthetic stand-in for the) UCI
Adult census table, samples a fake table of the same size, and verifies
the two paper headline properties: statistical similarity and nonzero
distance to every real record.

Run:  python examples/quickstart.py
"""

from repro import TableGAN, low_privacy
from repro.data.datasets import load_dataset
from repro.evaluation import compare_cdf
from repro.privacy import dcr

SEED = 7


def main() -> None:
    # 1. Load the dataset (80/20 train/test split, as in the paper).
    bundle = load_dataset("adult", rows=1000, seed=SEED)
    train = bundle.train
    print(f"original table: {train}")

    # 2. Train table-GAN (low privacy = maximum fidelity: delta = 0).
    config = low_privacy(epochs=15, batch_size=32, base_channels=16, seed=SEED)
    gan = TableGAN(config)
    gan.fit(train, on_epoch_end=lambda i, losses: print(
        f"  epoch {i + 1:2d}: D={losses.d_loss:.3f}  G_adv={losses.g_adv_loss:.3f}  "
        f"G_info={losses.g_info_loss:.3f}  G_class={losses.g_class_loss:.3f}"
    ))
    print(f"trained in {gan.train_seconds_:.1f}s")

    # 3. Sample a synthetic table with the same number of records.
    synthetic = gan.sample(train.n_rows)
    print(f"synthetic table: {synthetic}")

    # 4. Statistical similarity: compare one attribute's CDF.
    comparison = compare_cdf(train, synthetic, "hours_per_week")
    print(f"hours_per_week CDF: KS={comparison.ks_statistic:.3f}  "
          f"area={comparison.area_distance:.3f}  (0 = identical)")

    # 5. Privacy: distance to the closest real record must be positive.
    result = dcr(train, synthetic)
    print(f"DCR (avg ± std): {result.formatted()}   min={result.min:.3f}")
    assert result.min > 0.0, "a synthetic record leaked a real one verbatim!"
    print("no synthetic record coincides with a real record — safe to share.")


if __name__ == "__main__":
    main()
