"""Payroll scenario: sweeping the privacy knob on LACity.

table-GAN's hinge thresholds delta_mean / delta_sd trade fidelity for
privacy (§4.2.2): delta = 0 trains for maximum statistical similarity;
larger delta deliberately stops refinement early.  This example sweeps
delta over the paper's three settings plus one extreme, reporting the
fidelity/privacy frontier the paper's Tables 5–6 describe.

Run:  python examples/payroll_privacy_sweep.py
"""

import numpy as np

from repro import TableGAN, TableGanConfig
from repro.data.datasets import load_dataset
from repro.evaluation import mean_area_distance
from repro.evaluation.reporting import format_table
from repro.privacy import dcr

SEED = 5
# The paper's settings are 0 / 0.1 / 0.2 on feature statistics whose
# discrepancy converges near those magnitudes at paper scale.  At this
# example's small scale the discriminator-feature discrepancy plateaus
# near L_mean ~ 3, so the hinge only starts gating above that — the wider
# grid makes the trade-off regime visible.
DELTAS = (0.0, 1.0, 4.0, 8.0)


def main() -> None:
    bundle = load_dataset("lacity", rows=1000, seed=SEED)
    train = bundle.train

    rows = []
    for delta in DELTAS:
        config = TableGanConfig(
            delta_mean=delta, delta_sd=delta,
            epochs=15, batch_size=32, base_channels=16, seed=SEED,
        )
        gan = TableGAN(config)
        gan.fit(train)
        synthetic = gan.sample(train.n_rows, rng=np.random.default_rng(SEED))

        fidelity = mean_area_distance(train, synthetic)  # lower = more faithful
        privacy = dcr(train, synthetic)                   # higher = more private
        rows.append((
            f"{delta:.1f}",
            f"{fidelity:.3f}",
            privacy.formatted(),
            f"{gan.history_.final_l_mean:.2f}",
            f"{gan.history_.final_l_sd:.2f}",
        ))
        print(f"delta={delta:.1f}: fidelity distance {fidelity:.3f}, "
              f"DCR {privacy.formatted()}")

    print()
    print(format_table(
        ["delta (=delta_mean=delta_sd)", "CDF area distance (fidelity)",
         "DCR avg ± std (privacy)", "final L_mean", "final L_sd"],
        rows,
        title="LACity privacy sweep: the paper's fidelity/privacy frontier",
    ))
    print("\nReading the table: as delta grows the hinge gates the information "
          "loss earlier, so fidelity (CDF distance) degrades and privacy (DCR) "
          "grows or holds — the knob behind the paper's Tables 5 and 6. At "
          "small scale adjacent settings can swap within noise; the trend "
          "shows between the extremes.")


if __name__ == "__main__":
    main()
