"""Healthcare scenario: semantic integrity via the classifier network.

The paper motivates the classifier network C with medical semantics:
a record like (cholesterol=50, diabetes=1) is implausible, and a released
table full of such records is obviously fabricated (§4.1.3).  This example
trains table-GAN on the NHANES-style Health dataset twice — with and
without the classifier — and measures how well each synthetic table
preserves the glucose/HbA1c/diabetes relationship.

Run:  python examples/healthcare_synthesis.py
"""

import numpy as np

from repro import TableGAN, TableGanConfig
from repro.data.datasets import load_dataset
from repro.ml import DecisionTreeClassifier, f1_score

SEED = 11


def diabetes_consistency(table) -> dict[str, float]:
    """How strongly the diabetes label tracks its clinical drivers."""
    diabetes = table.column("diabetes")
    if diabetes.min() == diabetes.max():
        return {"glucose_gap": 0.0, "hba1c_gap": 0.0, "rate": float(diabetes.mean())}
    sick = diabetes == 1
    return {
        "glucose_gap": float(table.column("glucose")[sick].mean()
                             - table.column("glucose")[~sick].mean()),
        "hba1c_gap": float(table.column("hba1c")[sick].mean()
                           - table.column("hba1c")[~sick].mean()),
        "rate": float(diabetes.mean()),
    }


def downstream_f1(train_table, test_table) -> float:
    """Model compatibility: train a tree on `train_table`, test on real data."""
    X_train, y_train = train_table.features_and_label()
    X_test, y_test = test_table.features_and_label()
    model = DecisionTreeClassifier(max_depth=6, seed=SEED).fit(X_train, y_train)
    return f1_score(y_test, model.predict(X_test))


def main() -> None:
    bundle = load_dataset("health", rows=1200, seed=SEED)
    real_stats = diabetes_consistency(bundle.train)
    print("real table   :", {k: round(v, 2) for k, v in real_stats.items()})
    print(f"real-data F1 : {downstream_f1(bundle.train, bundle.test):.3f}\n")

    # Health's diabetes label is a 13% minority; the generator needs a few
    # hundred more steps than the balanced-label datasets before the label
    # mode appears at all.
    base = dict(epochs=40, batch_size=32, base_channels=16, seed=SEED)
    variants = {
        "with classifier (table-GAN)": TableGanConfig(**base, use_classifier=True),
        "without classifier (ablation)": TableGanConfig(**base, use_classifier=False),
    }
    for name, config in variants.items():
        gan = TableGAN(config)
        gan.fit(bundle.train)
        synthetic = gan.sample(bundle.train.n_rows, rng=np.random.default_rng(SEED))
        stats = diabetes_consistency(synthetic)
        f1 = downstream_f1(synthetic, bundle.test)
        rounded = {k: round(v, 2) for k, v in stats.items()}
        print(f"{name}:")
        print(f"  semantic stats : {rounded}")
        print(f"  downstream F1  : {f1:.3f}")
        print(f"  training time  : {gan.train_seconds_:.1f}s\n")

    print("Reading the table: a positive glucose/HbA1c gap means synthetic "
          "diabetic records are clinically plausible (the paper's semantic-"
          "integrity property). At this small scale the discriminator alone "
          "often captures much of the label semantics, so the classifier's "
          "added value fluctuates run to run; the paper observed incorrect "
          "generations without C on its full-size real datasets (§4.1.3).")


if __name__ == "__main__":
    main()
