"""Attack scenario: the §4.5 shadow-model membership attack, end to end.

Plays both sides: train a target table-GAN, then attack it with shadow
models built only from the target's released generator (black-box access),
exactly as Figure 3 of the paper describes.  Reports per-class attack F-1
and ROC AUC at the low- and high-privacy settings.

Run:  python examples/membership_attack_demo.py
"""

from repro import TableGAN, high_privacy, low_privacy
from repro.data.datasets import load_dataset
from repro.evaluation.reporting import format_table
from repro.privacy import MembershipAttack

SEED = 23


def main() -> None:
    bundle = load_dataset("adult", rows=800, seed=SEED)
    print(f"target training table: {bundle.train}; held-out pool: {bundle.test}\n")

    rows = []
    for name, config in (
        ("low privacy (delta=0)", low_privacy(
            epochs=10, batch_size=32, base_channels=16, seed=SEED)),
        ("high privacy (delta=0.2)", high_privacy(
            epochs=10, batch_size=32, base_channels=16, seed=SEED)),
    ):
        print(f"training target table-GAN [{name}] ...")
        target = TableGAN(config)
        target.fit(bundle.train)

        print("running shadow-model attack (1 shadow GAN) ...")
        attack = MembershipAttack(n_shadows=1, shadow_config=config, seed=SEED)
        result = attack.run(target, bundle.train, bundle.test)

        rows.append((name, f"{result.f1:.3f}", f"{result.auc:.3f}",
                     str(result.n_eval)))
        per_class = ", ".join(
            f"class {int(c)}: F1={f:.2f}" for c, f in result.per_class_f1.items()
        )
        print(f"  -> attack F1={result.f1:.3f}  AUC={result.auc:.3f}  ({per_class})\n")

    print(format_table(
        ["target setting", "attack F-1", "attack AUCROC", "eval records"],
        rows,
        title="Membership attack results (paper Table 6 protocol)",
    ))
    print("\nAUC near 0.5 = the attacker cannot tell members from non-members; "
          "the paper reports the high-privacy setting reducing attack success.")


if __name__ == "__main__":
    main()
