"""Full baseline comparison on one dataset (the paper's §5 in miniature).

Produces every method the paper evaluates — table-GAN (low/high privacy),
DCGAN, condensation, ARX-style anonymization, sdcMicro-style perturbation
— and scores all of them on the three axes of the evaluation:

* statistical similarity (mean CDF area distance, Figures 4/7/8),
* model compatibility (classification F-1 gap, Figure 5),
* privacy (DCR over sensitive attributes, Table 5).

Run:  python examples/baseline_comparison.py
"""

import numpy as np

from repro import TableGAN, high_privacy, low_privacy
from repro.baselines import (
    ArxAnonymizer,
    CondensationSynthesizer,
    DCGANSynthesizer,
    SdcMicroPerturber,
)
from repro.data.datasets import load_dataset
from repro.evaluation import classification_compatibility, mean_area_distance
from repro.evaluation.compatibility import classifier_suite
from repro.evaluation.reporting import format_table
from repro.privacy import dcr_sensitive_only

SEED = 17


def build_released_tables(train):
    """Run every method once; return name -> released table."""
    rng = np.random.default_rng(SEED)
    gan_params = dict(epochs=12, batch_size=32, base_channels=16, seed=SEED)

    gan_low = TableGAN(low_privacy(**gan_params))
    gan_low.fit(train)
    gan_high = TableGAN(high_privacy(**gan_params))
    gan_high.fit(train)
    dcgan = DCGANSynthesizer(**gan_params)
    dcgan.fit(train)
    condensation = CondensationSynthesizer(group_size=50, seed=SEED).fit(train)

    return {
        "table-GAN low": gan_low.sample(train.n_rows, rng=rng),
        "table-GAN high": gan_high.sample(train.n_rows, rng=rng),
        "DCGAN": dcgan.sample(train.n_rows, rng=rng),
        "condensation": condensation.sample(train.n_rows, rng=rng),
        "ARX (5-anon, 0.5-close)": ArxAnonymizer(
            method="k_t", k=5, t=0.5, seed=SEED).anonymize(train),
        "sdcMicro (pd=0.5, a=0.5)": SdcMicroPerturber(
            pd=0.5, alpha=0.5, seed=SEED).perturb(train),
    }


def main() -> None:
    bundle = load_dataset("lacity", rows=1000, seed=SEED)
    train, test = bundle.train, bundle.test
    print(f"dataset: LACity stand-in, {train.n_rows} train / {test.n_rows} test rows")
    print("building all released tables (six methods) ...\n")
    released = build_released_tables(train)

    # A small 4-algorithm compatibility suite for speed.
    suite = [classifier_suite()[i] for i in (2, 12, 22, 32)]

    rows = []
    for name, table in released.items():
        similarity = mean_area_distance(train, table)
        compat = classification_compatibility(train, table, test, suite=suite)
        privacy = dcr_sensitive_only(train, table)
        rows.append((
            name,
            f"{similarity:.3f}",
            f"{compat.mean_gap:.3f}",
            privacy.formatted(),
        ))
        print(f"scored {name}")

    print()
    print(format_table(
        ["method", "CDF distance (fidelity, low=good)",
         "F-1 gap (compatibility, low=good)",
         "sensitive DCR (privacy, high=good)"],
        rows,
        title="The paper's three-axis comparison (LACity)",
    ))
    print("\nThe paper's conclusion to reproduce: only table-GAN balances all "
          "three columns — anonymization has DCR 0 (left column of Table 5), "
          "condensation/DCGAN lose fidelity or compatibility.")


if __name__ == "__main__":
    main()
